package workload

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/namespace"
)

func TestGarageSaleDeterministic(t *testing.T) {
	ns := GarageSaleNamespace()
	cfg := GarageSaleConfig{Seed: 42, Sellers: 10, ItemsPerSeller: 5, SpecialtyZipf: 1.5}
	a := GarageSale(ns, cfg)
	b := GarageSale(ns, cfg)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("sellers = %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || !a[i].City.Equal(b[i].City) || !a[i].Spec.Equal(b[i].Spec) {
			t.Fatalf("seller %d differs between runs", i)
		}
		if len(a[i].Items) != 5 {
			t.Fatalf("seller %d items = %d", i, len(a[i].Items))
		}
		for j := range a[i].Items {
			if a[i].Items[j].String() != b[i].Items[j].String() {
				t.Fatalf("seller %d item %d differs", i, j)
			}
		}
	}
}

func TestGarageSaleAreaCoversItems(t *testing.T) {
	ns := GarageSaleNamespace()
	sellers := GarageSale(ns, GarageSaleConfig{Seed: 7, Sellers: 25, ItemsPerSeller: 8, SpecialtyZipf: 1.3})
	for _, s := range sellers {
		if err := ns.Validate(s.Area); err != nil {
			t.Fatalf("seller %s area invalid: %v", s.Addr, err)
		}
		for _, it := range s.Items {
			cat := hierarchy.MustParsePath(it.Value("category"))
			city := hierarchy.MustParsePath(it.Value("city"))
			if !city.Equal(s.City) {
				t.Fatalf("item city %v != seller city %v", city, s.City)
			}
			cell := namespace.NewCell(city, cat)
			if !s.Area.CoversCell(cell) {
				t.Fatalf("seller %s area %v does not cover item cell %v", s.Addr, s.Area, cell)
			}
			if _, err := it.Int("price"); err != nil {
				t.Fatalf("item price: %v", err)
			}
		}
	}
}

func TestQueriesValid(t *testing.T) {
	ns := GarageSaleNamespace()
	qs := Queries(ns, 1, 50, 1.4)
	if len(qs) != 50 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if err := ns.Validate(q.Area); err != nil {
			t.Fatalf("query area invalid: %v", err)
		}
		if q.MaxPrice < 10 {
			t.Fatalf("max price = %d", q.MaxPrice)
		}
	}
}

// TestFig1Scenario checks the routing facts the paper's Fig. 1 caption
// states: a query about mammalian heart cells overlaps the rodent and human
// groups but not the fly group.
func TestFig1Scenario(t *testing.T) {
	ns := GeneNamespace()
	groups := Fig1Groups(ns)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	query := ns.MustParseArea("[Coelomata/Deuterostomia/Mammalia, Muscle/Cardiac]")
	overlaps := make([]bool, 3)
	for i, g := range groups {
		if err := ns.Validate(g.Area); err != nil {
			t.Fatalf("group %s area: %v", g.Name, err)
		}
		overlaps[i] = g.Area.Overlaps(query)
	}
	if overlaps[0] {
		t.Fatal("fly/neural group must NOT overlap mammalian cardiac query")
	}
	if !overlaps[1] || !overlaps[2] {
		t.Fatalf("rodent and human groups must overlap: %v", overlaps)
	}
}

func TestExpressionDataInsideArea(t *testing.T) {
	ns := GeneNamespace()
	for _, g := range Fig1Groups(ns) {
		data := ExpressionData(ns, g, 3, 40)
		if len(data) != 40 {
			t.Fatalf("%s data = %d", g.Name, len(data))
		}
		for _, e := range data {
			org := hierarchy.MustParsePath(e.Value("organism"))
			cell := hierarchy.MustParsePath(e.Value("celltype"))
			if !g.Area.CoversCell(namespace.NewCell(org, cell)) {
				t.Fatalf("%s experiment outside area: %s / %s", g.Name, org, cell)
			}
		}
	}
}

func TestCDCatalog(t *testing.T) {
	sales, listings := CDCatalog(5, 10)
	if len(sales) != 10 || len(listings) != 30 {
		t.Fatalf("catalog = %d sales, %d listings", len(sales), len(listings))
	}
	// Every sale title appears in listings.
	titles := map[string]int{}
	for _, l := range listings {
		titles[l.Value("cd")]++
	}
	for _, s := range sales {
		if titles[s.Value("cd")] != 3 {
			t.Fatalf("cd %q has %d listings", s.Value("cd"), titles[s.Value("cd")])
		}
	}
	// Deterministic.
	sales2, _ := CDCatalog(5, 10)
	for i := range sales {
		if sales[i].String() != sales2[i].String() {
			t.Fatal("CDCatalog not deterministic")
		}
	}
}

// TestScaledNamespace: the large-world namespace generator produces the
// requested shape — states × cities and categories × subcategories — and
// GarageSale populates it the same way it populates the hand-built one
// (every seller's city and specialty are leaves of the scaled hierarchies).
func TestScaledNamespace(t *testing.T) {
	ns := ScaledNamespace(12, 8, 8, 6)
	loc, merch := ns.Dimensions()[0], ns.Dimensions()[1]
	states, err := loc.Children(hierarchy.Top)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 12 {
		t.Fatalf("states = %d, want 12", len(states))
	}
	if got := len(loc.Leaves()); got != 12*8 {
		t.Fatalf("cities = %d, want 96", got)
	}
	if got := len(merch.Leaves()); got != 8*6 {
		t.Fatalf("subcategories = %d, want 48", got)
	}

	sellers := GarageSale(ns, GarageSaleConfig{Seed: 7, Sellers: 200, ItemsPerSeller: 3, SpecialtyZipf: 1.5})
	if len(sellers) != 200 {
		t.Fatalf("sellers = %d", len(sellers))
	}
	seenStates := map[string]bool{}
	for _, s := range sellers {
		if !loc.Contains(s.City) || s.City.Depth() != 2 {
			t.Fatalf("seller city %s is not a scaled-namespace leaf", s.City)
		}
		if !merch.Contains(s.Spec) {
			t.Fatalf("seller specialty %s is not in the scaled hierarchy", s.Spec)
		}
		if err := ns.Validate(s.Area); err != nil {
			t.Fatalf("seller area invalid: %v", err)
		}
		seenStates[s.City.Truncate(1).String()] = true
	}
	// Zipf skews but 200 sellers over 12 states must still spread: the
	// large-world generator builds one index per state and expects traffic
	// across several of them.
	if len(seenStates) < 4 {
		t.Fatalf("200 sellers cover only %d states", len(seenStates))
	}
}
