// Package workload generates the synthetic data the experiments run on:
// the P2P garage sale of §2 (sellers with locality in geography and
// merchandise category), the gene-expression scenario of Fig. 1 (organism ×
// cell-type hierarchies), and the CD/track-listing service of Fig. 3. All
// generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/xmltree"
)

// GarageSaleNamespace builds the Location × Merchandise namespace of
// Fig. 5, widened enough for skewed workloads.
func GarageSaleNamespace() *namespace.Namespace {
	loc := hierarchy.New("Location")
	for _, p := range []string{
		"USA/OR/Portland", "USA/OR/Eugene", "USA/OR/Salem",
		"USA/WA/Seattle", "USA/WA/Vancouver", "USA/WA/Tacoma",
		"USA/CA/SanFrancisco", "USA/CA/LosAngeles", "USA/CA/SanDiego",
		"USA/NY/NewYork", "USA/NY/Buffalo",
		"France/IDF/Paris", "France/PACA/Marseille",
	} {
		loc.MustAdd(p)
	}
	merch := hierarchy.New("Merchandise")
	for _, p := range []string{
		"Electronics/TV", "Electronics/VCR", "Electronics/Audio",
		"Furniture/Tables", "Furniture/Chairs", "Furniture/Sofas",
		"Music/CDs", "Music/Vinyl",
		"Books/Fiction", "Books/Technical",
		"Recreation/SportingGoods/GolfClubs", "Recreation/SportingGoods/Bicycles",
		"Clothing/Shoes", "Clothing/Coats",
	} {
		merch.MustAdd(p)
	}
	return namespace.MustNew(loc, merch)
}

// ScaledNamespace builds a synthetic Location × Merchandise namespace of
// arbitrary size for large-world runs: states S00..S<n> with citiesPerState
// cities each (so locations are state/city, two levels like the garage-sale
// namespace), and cats top-level merchandise categories with subsPerCat
// leaves each. Names are a pure function of the shape, so two worlds built
// over the same shape agree on every category and area.
func ScaledNamespace(states, citiesPerState, cats, subsPerCat int) *namespace.Namespace {
	loc := hierarchy.New("Location")
	for s := 0; s < states; s++ {
		for c := 0; c < citiesPerState; c++ {
			loc.MustAdd(fmt.Sprintf("S%02d/C%02d", s, c))
		}
	}
	merch := hierarchy.New("Merchandise")
	for c := 0; c < cats; c++ {
		for s := 0; s < subsPerCat; s++ {
			merch.MustAdd(fmt.Sprintf("M%02d/L%02d", c, s))
		}
	}
	return namespace.MustNew(loc, merch)
}

// Seller is one garage-sale data provider: a most-specific location, a
// merchandise specialty, and the items it exports.
type Seller struct {
	Addr  string
	City  hierarchy.Path
	Spec  hierarchy.Path
	Area  namespace.Area
	Items []*xmltree.Node
}

// GarageSaleConfig parameterizes the generator.
type GarageSaleConfig struct {
	Seed           int64
	Sellers        int
	ItemsPerSeller int
	// SpecialtyZipf skews sellers toward popular merchandise categories;
	// 1.2–2.0 are realistic. Zero disables skew.
	SpecialtyZipf float64
}

// GarageSale generates sellers over the garage-sale namespace. Sellers have
// locality: every item of a seller shares the seller's city (§3.1: "All the
// items sold by the same seller in the P2P garage sale will usually have
// the same address"), and most items fall in the seller's specialty.
func GarageSale(ns *namespace.Namespace, cfg GarageSaleConfig) []Seller {
	r := rand.New(rand.NewSource(cfg.Seed))
	cities := ns.Dimensions()[0].Leaves()
	specs := ns.Dimensions()[1].Leaves()
	// Decouple Zipf rank from alphabetical order: permute which category is
	// "most popular" per seed.
	r.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	pickSpec := func() hierarchy.Path { return specs[r.Intn(len(specs))] }
	if cfg.SpecialtyZipf > 1 {
		z := rand.NewZipf(r, cfg.SpecialtyZipf, 1, uint64(len(specs)-1))
		pickSpec = func() hierarchy.Path { return specs[int(z.Uint64())] }
	}

	sellers := make([]Seller, cfg.Sellers)
	for i := range sellers {
		city := cities[r.Intn(len(cities))]
		spec := pickSpec()
		s := Seller{
			Addr: fmt.Sprintf("seller%03d:9020", i),
			City: city,
			Spec: spec,
			Area: namespace.NewArea(namespace.NewCell(city, spec)),
		}
		for j := 0; j < cfg.ItemsPerSeller; j++ {
			cat := spec
			// A tenth of the items fall outside the specialty; the seller's
			// declared area stays honest because interest areas describe,
			// not guarantee, holdings — we keep generated items inside the
			// area to make recall measurable, so off-specialty items pick a
			// sibling leaf only when it stays under the same parent.
			if r.Intn(10) == 0 {
				cat = siblingLeaf(ns.Dimensions()[1], spec, r)
			}
			s.Items = append(s.Items, saleItem(r, i, j, city, cat))
		}
		sellers[i] = s
		// Broaden the area when off-specialty items were generated.
		for _, it := range s.Items {
			catPath := hierarchy.MustParsePath(it.Value("category"))
			cell := namespace.NewCell(city, catPath)
			if !s.Area.CoversCell(cell) {
				s.Area = s.Area.Union(namespace.NewArea(cell))
			}
		}
		sellers[i] = s
	}
	return sellers
}

// siblingLeaf picks another leaf under the same top-level category when one
// exists, else returns spec itself.
func siblingLeaf(h *hierarchy.Hierarchy, spec hierarchy.Path, r *rand.Rand) hierarchy.Path {
	top := spec.Truncate(1)
	var candidates []hierarchy.Path
	for _, l := range h.Leaves() {
		if top.Covers(l) && !l.Equal(spec) {
			candidates = append(candidates, l)
		}
	}
	if len(candidates) == 0 {
		return spec
	}
	return candidates[r.Intn(len(candidates))]
}

var conditions = []string{"new", "like-new", "good", "fair", "poor"}

func saleItem(r *rand.Rand, seller, n int, city, cat hierarchy.Path) *xmltree.Node {
	price := 1 + r.Intn(200)
	it := xmltree.Elem("item")
	it.SetAttr("id", fmt.Sprintf("s%d-i%d", seller, n))
	it.Add(
		xmltree.ElemText("name", fmt.Sprintf("%s #%d", cat.Leaf(), n)),
		xmltree.ElemText("category", cat.String()),
		xmltree.ElemText("city", city.String()),
		xmltree.ElemText("price", fmt.Sprintf("%d", price)),
		xmltree.ElemText("condition", conditions[r.Intn(len(conditions))]),
		xmltree.ElemText("qty", fmt.Sprintf("%d", 1+r.Intn(3))),
	)
	return it
}

// Query is a generated search: an interest area plus a price ceiling.
type Query struct {
	Area     namespace.Area
	MaxPrice int
}

// Queries generates n queries whose areas follow the same skew as the data
// (buyers look for what sellers sell, §3.1).
func Queries(ns *namespace.Namespace, seed int64, n int, zipf float64) []Query {
	r := rand.New(rand.NewSource(seed))
	cities := ns.Dimensions()[0].Leaves()
	specs := ns.Dimensions()[1].Leaves()
	r.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })
	pickSpec := func() hierarchy.Path { return specs[r.Intn(len(specs))] }
	if zipf > 1 {
		z := rand.NewZipf(r, zipf, 1, uint64(len(specs)-1))
		pickSpec = func() hierarchy.Path { return specs[int(z.Uint64())] }
	}
	out := make([]Query, n)
	for i := range out {
		city := cities[r.Intn(len(cities))]
		// Queries sometimes generalize a level (state-wide search).
		loc := city
		if r.Intn(3) == 0 {
			loc = city.Parent()
		}
		out[i] = Query{
			Area:     namespace.NewArea(namespace.NewCell(loc, pickSpec())),
			MaxPrice: 10 + r.Intn(150),
		}
	}
	return out
}

// --- Gene expression (paper Fig. 1) ------------------------------------

// GeneNamespace builds the Organism × CellType namespace exactly as drawn
// in Fig. 1.
func GeneNamespace() *namespace.Namespace {
	org := hierarchy.New("Organism")
	for _, p := range []string{
		"Coelomata/Protostomia/Drosophila-Melanogaster",
		"Coelomata/Deuterostomia/Mammalia/Primates/Homo-Sapiens",
		"Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia/Murinae/Mus-Musculus",
		"Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia/Murinae/Rattus-Norvegicus",
	} {
		org.MustAdd(p)
	}
	cell := hierarchy.New("CellType")
	for _, p := range []string{
		"Neural/Neurons/Sensory", "Neural/Neurons/Motor", "Neural/Neurons/Association",
		"Neural/Glial",
		"Connective/Bone/Osteoblasts", "Connective/Bone/Osteoclasts", "Connective/Adipose",
		"Muscle/Cardiac/Autorhythmic", "Muscle/Cardiac/Contractile",
		"Muscle/Smooth", "Muscle/Skeletal",
		"Epithelial/Cilliated", "Epithelial/Secretory",
	} {
		cell.MustAdd(p)
	}
	return namespace.MustNew(org, cell)
}

// Group is a research group hosting expression data (Fig. 1).
type Group struct {
	Name string
	Addr string
	Area namespace.Area
}

// Fig1Groups returns the paper's three groups: fly/neural, rodent
// connective+muscle, and human all-cell-types.
func Fig1Groups(ns *namespace.Namespace) []Group {
	return []Group{
		{
			Name: "fly-neuro-lab", Addr: "fly-lab:9020",
			Area: ns.MustParseArea("[Coelomata/Protostomia/Drosophila-Melanogaster, Neural]"),
		},
		{
			Name: "rodent-lab", Addr: "rodent-lab:9020",
			Area: ns.MustParseArea(
				"[Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia, Connective] + " +
					"[Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia, Muscle]"),
		},
		{
			Name: "human-lab", Addr: "human-lab:9020",
			Area: ns.MustParseArea("[Coelomata/Deuterostomia/Mammalia/Primates/Homo-Sapiens, *]"),
		},
	}
}

// ExpressionData generates MIAME-flavored expression bundles inside a
// group's interest area.
func ExpressionData(ns *namespace.Namespace, g Group, seed int64, n int) []*xmltree.Node {
	r := rand.New(rand.NewSource(seed))
	org := ns.Dimensions()[0]
	cell := ns.Dimensions()[1]
	// Candidate (organism, celltype) leaf pairs covered by the area.
	type pair struct{ o, c hierarchy.Path }
	var pairs []pair
	for _, o := range org.Leaves() {
		for _, c := range cell.Leaves() {
			if g.Area.CoversCell(namespace.NewCell(o, c)) {
				pairs = append(pairs, pair{o, c})
			}
		}
	}
	if len(pairs) == 0 {
		return nil
	}
	out := make([]*xmltree.Node, n)
	for i := range out {
		p := pairs[r.Intn(len(pairs))]
		e := xmltree.Elem("experiment")
		e.SetAttr("id", fmt.Sprintf("%s-%d", g.Name, i))
		e.Add(
			xmltree.ElemText("organism", p.o.String()),
			xmltree.ElemText("celltype", p.c.String()),
			xmltree.ElemText("gene", fmt.Sprintf("GENE%04d", r.Intn(500))),
			xmltree.ElemText("expression", fmt.Sprintf("%.3f", r.Float64()*10)),
			xmltree.ElemText("lab", g.Name),
		)
		out[i] = e
	}
	return out
}

// --- CD / track listings (Fig. 3) ---------------------------------------

// CDCatalog generates nCDs for-sale bundles and the full track-listing
// collection covering them (three tracks per CD).
func CDCatalog(seed int64, nCDs int) (sales, listings []*xmltree.Node) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < nCDs; i++ {
		title := fmt.Sprintf("Album %03d", i)
		sale := xmltree.Elem("sale")
		sale.Add(
			xmltree.ElemText("cd", title),
			xmltree.ElemText("price", fmt.Sprintf("%d", 3+r.Intn(25))),
		)
		sales = append(sales, sale)
		for tno := 0; tno < 3; tno++ {
			l := xmltree.Elem("listing")
			l.Add(
				xmltree.ElemText("cd", title),
				xmltree.ElemText("song", fmt.Sprintf("Track %d of %s", tno+1, title)),
			)
			listings = append(listings, l)
		}
	}
	return sales, listings
}
