// Package hierarchy implements categorization hierarchies — the building
// block of the paper's multi-hierarchic namespaces (§3.1) — and category
// servers (§3.5), which answer queries about the hierarchies themselves and
// can delegate sub-trees to other servers, DNS-style.
//
// A category is identified by a slash-separated path from the hierarchy
// root, e.g. "USA/OR/Portland" in a Location hierarchy or
// "Furniture/Chairs" in a Merchandise hierarchy. The special path "*"
// denotes the all-inclusive top category of a dimension. Every item belongs
// to exactly one most-specific category and, implicitly, to all of that
// category's ancestors.
package hierarchy

import (
	"fmt"
	"sort"
	"strings"
)

// Path is a category path within one hierarchy: a slash-separated list of
// segment names, or "*" for the hierarchy's top. The zero value is invalid;
// use Top or ParsePath.
type Path struct {
	segs []string // nil for top ("*")
}

// Top is the all-inclusive top category "*" of any dimension.
var Top = Path{}

// ParsePath parses "USA/OR/Portland" (or "*") into a Path. Empty segments
// are rejected; surrounding whitespace on each segment is trimmed.
func ParsePath(s string) (Path, error) {
	s = strings.TrimSpace(s)
	if s == "*" || s == "" {
		return Top, nil
	}
	parts := strings.Split(s, "/")
	segs := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return Path{}, fmt.Errorf("hierarchy: empty segment in path %q", s)
		}
		if p == "*" {
			return Path{}, fmt.Errorf("hierarchy: %q may appear only as the whole path", "*")
		}
		segs = append(segs, p)
	}
	return Path{segs: segs}, nil
}

// MustParsePath is ParsePath for fixtures and tests; it panics on error.
func MustParsePath(s string) Path {
	p, err := ParsePath(s)
	if err != nil {
		panic(err)
	}
	return p
}

// NewPath builds a Path from individual segment names.
func NewPath(segs ...string) Path {
	cp := make([]string, len(segs))
	copy(cp, segs)
	return Path{segs: cp}
}

// IsTop reports whether the path is the all-inclusive "*" category.
func (p Path) IsTop() bool { return len(p.segs) == 0 }

// Depth returns the number of segments (0 for top).
func (p Path) Depth() int { return len(p.segs) }

// Segments returns a copy of the path's segments.
func (p Path) Segments() []string {
	out := make([]string, len(p.segs))
	copy(out, p.segs)
	return out
}

// Leaf returns the final segment name, or "*" for top.
func (p Path) Leaf() string {
	if p.IsTop() {
		return "*"
	}
	return p.segs[len(p.segs)-1]
}

// String renders the path in the paper's notation, e.g. "USA/OR/Portland".
func (p Path) String() string {
	if p.IsTop() {
		return "*"
	}
	return strings.Join(p.segs, "/")
}

// Parent returns the immediate parent category; the parent of a depth-1 path
// is Top, and Top is its own parent.
func (p Path) Parent() Path {
	if len(p.segs) <= 1 {
		return Top
	}
	return Path{segs: p.segs[:len(p.segs)-1]}
}

// Child returns the path extended by one segment.
func (p Path) Child(seg string) Path {
	segs := make([]string, len(p.segs)+1)
	copy(segs, p.segs)
	segs[len(p.segs)] = seg
	return Path{segs: segs}
}

// Equal reports whether two paths name the same category.
func (p Path) Equal(q Path) bool {
	if len(p.segs) != len(q.segs) {
		return false
	}
	for i := range p.segs {
		if p.segs[i] != q.segs[i] {
			return false
		}
	}
	return true
}

// Covers reports whether p is an ancestor of q or the same category: the
// paper's per-dimension cover relation. Top covers everything.
func (p Path) Covers(q Path) bool {
	if len(p.segs) > len(q.segs) {
		return false
	}
	for i := range p.segs {
		if p.segs[i] != q.segs[i] {
			return false
		}
	}
	return true
}

// Overlaps reports whether the two categories share any items, i.e. one
// covers the other (in a hierarchy, distinct sibling subtrees are disjoint).
func (p Path) Overlaps(q Path) bool {
	return p.Covers(q) || q.Covers(p)
}

// Meet returns the more specific of two overlapping paths (their
// intersection as item sets) and reports whether they overlap at all.
func (p Path) Meet(q Path) (Path, bool) {
	switch {
	case p.Covers(q):
		return q, true
	case q.Covers(p):
		return p, true
	default:
		return Path{}, false
	}
}

// LCA returns the lowest common ancestor of the two paths (possibly Top).
func (p Path) LCA(q Path) Path {
	n := len(p.segs)
	if len(q.segs) < n {
		n = len(q.segs)
	}
	i := 0
	for i < n && p.segs[i] == q.segs[i] {
		i++
	}
	return Path{segs: p.segs[:i]}
}

// Truncate returns the path cut to at most depth segments. The paper (§3.5)
// uses this to approximate an unknown category by an ancestor: precision may
// drop but recall is preserved.
func (p Path) Truncate(depth int) Path {
	if depth < 0 {
		depth = 0
	}
	if depth >= len(p.segs) {
		return p
	}
	return Path{segs: p.segs[:depth]}
}

// Compare orders paths lexicographically by segment; Top sorts first.
func (p Path) Compare(q Path) int {
	n := len(p.segs)
	if len(q.segs) < n {
		n = len(q.segs)
	}
	for i := 0; i < n; i++ {
		if c := strings.Compare(p.segs[i], q.segs[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(p.segs) < len(q.segs):
		return -1
	case len(p.segs) > len(q.segs):
		return 1
	default:
		return 0
	}
}

// Hierarchy is one categorization dimension: a named tree of categories.
// The zero value is not usable; construct with New.
type Hierarchy struct {
	name string
	root *node
}

type node struct {
	name     string
	children map[string]*node
}

// New creates an empty hierarchy with the given dimension name
// (e.g. "Location", "Merchandise", "Organism", "CellType").
func New(name string) *Hierarchy {
	return &Hierarchy{name: name, root: &node{children: map[string]*node{}}}
}

// Name returns the dimension name.
func (h *Hierarchy) Name() string { return h.name }

// AddPath inserts a category path, creating intermediate categories as
// needed, and returns the inserted Path.
func (h *Hierarchy) AddPath(s string) (Path, error) {
	p, err := ParsePath(s)
	if err != nil {
		return Path{}, err
	}
	cur := h.root
	for _, seg := range p.segs {
		next, ok := cur.children[seg]
		if !ok {
			next = &node{name: seg, children: map[string]*node{}}
			cur.children[seg] = next
		}
		cur = next
	}
	return p, nil
}

// MustAdd is AddPath for fixtures; it panics on error.
func (h *Hierarchy) MustAdd(s string) Path {
	p, err := h.AddPath(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Contains reports whether the exact category exists in the hierarchy.
// Top always exists.
func (h *Hierarchy) Contains(p Path) bool {
	return h.lookup(p) != nil
}

func (h *Hierarchy) lookup(p Path) *node {
	cur := h.root
	for _, seg := range p.segs {
		next, ok := cur.children[seg]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur
}

// Children answers the paper's category-server query "what are the immediate
// subcategories of X?". Results are sorted for determinism. Unknown paths
// yield an error.
func (h *Hierarchy) Children(p Path) ([]Path, error) {
	n := h.lookup(p)
	if n == nil {
		return nil, fmt.Errorf("hierarchy %s: unknown category %q", h.name, p)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Path, len(names))
	for i, name := range names {
		out[i] = p.Child(name)
	}
	return out, nil
}

// KnownDepth returns the depth of the deepest known ancestor of p — the
// truncation point Generalize uses, exposed so callers absorbing learned
// routing state can tell how much precision a generalization costs before
// committing it (0 means the hierarchy knows nothing along p).
func (h *Hierarchy) KnownDepth(p Path) int {
	cur := h.root
	known := 0
	for _, seg := range p.segs {
		next, ok := cur.children[seg]
		if !ok {
			break
		}
		cur = next
		known++
	}
	return known
}

// Generalize maps a possibly-unknown path to its deepest known ancestor
// (§3.5: "rewrite USA/OR/Portland into USA/OR, with a possible loss of
// precision, but no loss of recall").
func (h *Hierarchy) Generalize(p Path) Path {
	return p.Truncate(h.KnownDepth(p))
}

// Leaves returns every leaf category in the hierarchy, sorted; workload
// generators draw most-specific categories from this set.
func (h *Hierarchy) Leaves() []Path {
	var out []Path
	var walk func(n *node, p Path)
	walk = func(n *node, p Path) {
		if len(n.children) == 0 {
			if !p.IsTop() {
				out = append(out, p)
			}
			return
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			walk(n.children[name], p.Child(name))
		}
	}
	walk(h.root, Top)
	return out
}

// All returns every category in the hierarchy (excluding Top), sorted.
func (h *Hierarchy) All() []Path {
	var out []Path
	var walk func(n *node, p Path)
	walk = func(n *node, p Path) {
		if !p.IsTop() {
			out = append(out, p)
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			walk(n.children[name], p.Child(name))
		}
	}
	walk(h.root, Top)
	return out
}

// Size returns the number of categories (excluding Top).
func (h *Hierarchy) Size() int {
	var count func(n *node) int
	count = func(n *node) int {
		total := 0
		for _, c := range n.children {
			total += 1 + count(c)
		}
		return total
	}
	return count(h.root)
}
