package hierarchy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Server is a category server (§3.5): it manages data about categorization
// hierarchies and can delegate portions of a namespace to other category
// servers, much like DNS sub-domain delegation. Server is safe for
// concurrent use.
type Server struct {
	mu          sync.RWMutex
	hierarchies map[string]*Hierarchy
	// delegations maps dimension name -> sorted list of (path prefix,
	// delegate address). The most specific matching delegation wins.
	delegations map[string][]Delegation
}

// Delegation records that queries under Prefix of one dimension are managed
// by the category server at Addr.
type Delegation struct {
	Prefix Path
	Addr   string
}

// NewServer creates a category server managing the given hierarchies.
func NewServer(hs ...*Hierarchy) *Server {
	s := &Server{
		hierarchies: map[string]*Hierarchy{},
		delegations: map[string][]Delegation{},
	}
	for _, h := range hs {
		s.hierarchies[h.Name()] = h
	}
	return s
}

// AddHierarchy registers (or replaces) a hierarchy on the server.
func (s *Server) AddHierarchy(h *Hierarchy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hierarchies[h.Name()] = h
}

// Hierarchy returns the named hierarchy, or nil.
func (s *Server) Hierarchy(name string) *Hierarchy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hierarchies[name]
}

// Dimensions lists the dimension names the server manages, sorted.
func (s *Server) Dimensions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.hierarchies))
	for n := range s.hierarchies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Delegate records that the subtree under prefix of the named dimension is
// managed by the category server at addr.
func (s *Server) Delegate(dimension string, prefix Path, addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hierarchies[dimension]
	if !ok {
		return fmt.Errorf("hierarchy: delegate: unknown dimension %q", dimension)
	}
	if !h.Contains(prefix) {
		return fmt.Errorf("hierarchy: delegate: unknown category %q in %s", prefix, dimension)
	}
	s.delegations[dimension] = append(s.delegations[dimension], Delegation{Prefix: prefix, Addr: addr})
	// Keep most specific first so Resolve finds the best match by scanning.
	sort.Slice(s.delegations[dimension], func(i, j int) bool {
		di, dj := s.delegations[dimension][i], s.delegations[dimension][j]
		if di.Prefix.Depth() != dj.Prefix.Depth() {
			return di.Prefix.Depth() > dj.Prefix.Depth()
		}
		return di.Prefix.Compare(dj.Prefix) < 0
	})
	return nil
}

// Resolve reports which category server is responsible for the given
// category: the address of the most specific delegation covering it, or ""
// when this server is itself responsible.
func (s *Server) Resolve(dimension string, p Path) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.delegations[dimension] {
		if d.Prefix.Covers(p) {
			return d.Addr
		}
	}
	return ""
}

// Subcategories answers the category-server query "what are the immediate
// subcategories of p?" for the named dimension.
func (s *Server) Subcategories(dimension string, p Path) ([]Path, error) {
	s.mu.RLock()
	h, ok := s.hierarchies[dimension]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hierarchy: unknown dimension %q", dimension)
	}
	return h.Children(p)
}

// Validate checks that a category exists in the named dimension; when it
// does not, it returns the deepest known ancestor so callers can degrade
// gracefully (loss of precision, no loss of recall).
func (s *Server) Validate(dimension string, p Path) (exact bool, nearest Path, err error) {
	s.mu.RLock()
	h, ok := s.hierarchies[dimension]
	s.mu.RUnlock()
	if !ok {
		return false, Path{}, fmt.Errorf("hierarchy: unknown dimension %q", dimension)
	}
	if h.Contains(p) {
		return true, p, nil
	}
	return false, h.Generalize(p), nil
}

// Describe renders a human-readable summary of the namespace, used by the
// examples.
func (s *Server) Describe() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.hierarchies))
	for n := range s.hierarchies {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		h := s.hierarchies[n]
		fmt.Fprintf(&b, "%s (%d categories)\n", n, h.Size())
	}
	return b.String()
}
