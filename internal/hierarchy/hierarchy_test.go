package hierarchy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePath(t *testing.T) {
	p, err := ParsePath("USA/OR/Portland")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "USA/OR/Portland" || p.Depth() != 3 || p.Leaf() != "Portland" {
		t.Fatalf("parsed %v depth=%d leaf=%s", p, p.Depth(), p.Leaf())
	}
	top, err := ParsePath("*")
	if err != nil || !top.IsTop() {
		t.Fatalf("top parse: %v %v", top, err)
	}
	if top.String() != "*" {
		t.Fatalf("top string = %q", top.String())
	}
	for _, bad := range []string{"USA//Portland", "a/*", "*/b", "a//"} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q): want error", bad)
		}
	}
}

func TestCovers(t *testing.T) {
	usa := MustParsePath("USA")
	or := MustParsePath("USA/OR")
	pdx := MustParsePath("USA/OR/Portland")
	eug := MustParsePath("USA/OR/Eugene")
	fr := MustParsePath("France")

	cases := []struct {
		a, b Path
		want bool
	}{
		{Top, pdx, true},
		{usa, pdx, true},
		{or, pdx, true},
		{pdx, pdx, true},
		{pdx, or, false},
		{eug, pdx, false},
		{fr, pdx, false},
		{pdx, Top, false},
	}
	for _, c := range cases {
		if got := c.a.Covers(c.b); got != c.want {
			t.Errorf("%v covers %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOverlapsAndMeet(t *testing.T) {
	or := MustParsePath("USA/OR")
	pdx := MustParsePath("USA/OR/Portland")
	wa := MustParsePath("USA/WA")
	if !or.Overlaps(pdx) || !pdx.Overlaps(or) {
		t.Fatal("ancestor/descendant must overlap")
	}
	if or.Overlaps(wa) {
		t.Fatal("siblings must not overlap")
	}
	m, ok := or.Meet(pdx)
	if !ok || !m.Equal(pdx) {
		t.Fatalf("Meet = %v, %v", m, ok)
	}
	if _, ok := or.Meet(wa); ok {
		t.Fatal("disjoint meet should fail")
	}
}

func TestLCA(t *testing.T) {
	pdx := MustParsePath("USA/OR/Portland")
	eug := MustParsePath("USA/OR/Eugene")
	sea := MustParsePath("USA/WA/Seattle")
	fr := MustParsePath("France")
	if got := pdx.LCA(eug); got.String() != "USA/OR" {
		t.Fatalf("LCA = %v", got)
	}
	if got := pdx.LCA(sea); got.String() != "USA" {
		t.Fatalf("LCA = %v", got)
	}
	if got := pdx.LCA(fr); !got.IsTop() {
		t.Fatalf("LCA = %v", got)
	}
}

func TestParentChildTruncate(t *testing.T) {
	pdx := MustParsePath("USA/OR/Portland")
	if pdx.Parent().String() != "USA/OR" {
		t.Fatalf("parent = %v", pdx.Parent())
	}
	if !MustParsePath("USA").Parent().IsTop() {
		t.Fatal("parent of depth-1 must be top")
	}
	if !Top.Parent().IsTop() {
		t.Fatal("parent of top is top")
	}
	if got := pdx.Truncate(2).String(); got != "USA/OR" {
		t.Fatalf("truncate = %v", got)
	}
	if got := pdx.Truncate(10); !got.Equal(pdx) {
		t.Fatalf("truncate beyond depth changed path: %v", got)
	}
	if got := pdx.Truncate(-1); !got.IsTop() {
		t.Fatalf("truncate(-1) = %v", got)
	}
	if got := MustParsePath("USA/OR").Child("Portland"); !got.Equal(pdx) {
		t.Fatalf("child = %v", got)
	}
}

func TestCompareOrdering(t *testing.T) {
	a := MustParsePath("USA")
	b := MustParsePath("USA/OR")
	c := MustParsePath("USA/WA")
	if a.Compare(b) >= 0 || b.Compare(c) >= 0 || b.Compare(b) != 0 {
		t.Fatal("compare ordering broken")
	}
	if Top.Compare(a) >= 0 {
		t.Fatal("top must sort first")
	}
}

func newLocation() *Hierarchy {
	h := New("Location")
	for _, p := range []string{
		"USA/OR/Portland", "USA/OR/Eugene",
		"USA/WA/Seattle", "USA/WA/Vancouver",
		"USA/CA", "France",
	} {
		h.MustAdd(p)
	}
	return h
}

func TestHierarchyContainsChildren(t *testing.T) {
	h := newLocation()
	if !h.Contains(MustParsePath("USA/OR")) {
		t.Fatal("intermediate category must exist")
	}
	if !h.Contains(Top) {
		t.Fatal("top must exist")
	}
	if h.Contains(MustParsePath("USA/TX")) {
		t.Fatal("unknown category should not exist")
	}
	kids, err := h.Children(MustParsePath("USA"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"USA/CA", "USA/OR", "USA/WA"}
	if len(kids) != len(want) {
		t.Fatalf("children = %v", kids)
	}
	for i := range want {
		if kids[i].String() != want[i] {
			t.Fatalf("children[%d] = %v, want %v", i, kids[i], want[i])
		}
	}
	if _, err := h.Children(MustParsePath("Narnia")); err == nil {
		t.Fatal("children of unknown category should error")
	}
}

func TestGeneralize(t *testing.T) {
	h := newLocation()
	got := h.Generalize(MustParsePath("USA/OR/Beaverton"))
	if got.String() != "USA/OR" {
		t.Fatalf("generalize = %v", got)
	}
	got = h.Generalize(MustParsePath("Atlantis/Deep"))
	if !got.IsTop() {
		t.Fatalf("generalize unknown root = %v", got)
	}
	known := MustParsePath("USA/OR/Portland")
	if !h.Generalize(known).Equal(known) {
		t.Fatal("known path must generalize to itself")
	}
}

// TestKnownDepth pins the truncation point Generalize uses — exposed so
// learned-routing absorption can tell how much precision a generalization
// costs before committing it.
func TestKnownDepth(t *testing.T) {
	h := newLocation()
	cases := []struct {
		path string
		want int
	}{
		{"USA/OR/Portland", 3}, // fully known
		{"USA/OR/Beaverton", 2},
		{"USA/TX/Austin", 1},
		{"Atlantis/Deep", 0},
		{"*", 0},
	}
	for _, c := range cases {
		if got := h.KnownDepth(MustParsePath(c.path)); got != c.want {
			t.Fatalf("KnownDepth(%s) = %d, want %d", c.path, got, c.want)
		}
		// Generalize ≡ Truncate(KnownDepth) — the two stay in lockstep.
		p := MustParsePath(c.path)
		if !h.Generalize(p).Equal(p.Truncate(h.KnownDepth(p))) {
			t.Fatalf("Generalize(%s) diverged from Truncate(KnownDepth)", c.path)
		}
	}
}

func TestLeavesAllSize(t *testing.T) {
	h := newLocation()
	leaves := h.Leaves()
	if len(leaves) != 6 { // Portland, Eugene, Seattle, Vancouver, CA, France
		t.Fatalf("leaves = %v", leaves)
	}
	if h.Size() != 9 { // USA,OR,WA,CA,France + 4 cities
		t.Fatalf("size = %d", h.Size())
	}
	if len(h.All()) != h.Size() {
		t.Fatalf("All() = %d, Size() = %d", len(h.All()), h.Size())
	}
}

func TestServerDelegation(t *testing.T) {
	h := newLocation()
	s := NewServer(h)
	if err := s.Delegate("Location", MustParsePath("USA"), "cat-usa:1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delegate("Location", MustParsePath("USA/OR"), "cat-or:1"); err != nil {
		t.Fatal(err)
	}
	// Most specific delegation wins.
	if got := s.Resolve("Location", MustParsePath("USA/OR/Portland")); got != "cat-or:1" {
		t.Fatalf("resolve = %q", got)
	}
	if got := s.Resolve("Location", MustParsePath("USA/WA")); got != "cat-usa:1" {
		t.Fatalf("resolve = %q", got)
	}
	if got := s.Resolve("Location", MustParsePath("France")); got != "" {
		t.Fatalf("resolve = %q, want local", got)
	}
	if err := s.Delegate("Location", MustParsePath("Mars"), "x"); err == nil {
		t.Fatal("delegating unknown category should error")
	}
	if err := s.Delegate("Time", Top, "x"); err == nil {
		t.Fatal("delegating unknown dimension should error")
	}
}

func TestServerValidateAndSubcategories(t *testing.T) {
	s := NewServer(newLocation())
	exact, nearest, err := s.Validate("Location", MustParsePath("USA/OR/Beaverton"))
	if err != nil || exact || nearest.String() != "USA/OR" {
		t.Fatalf("validate = %v %v %v", exact, nearest, err)
	}
	exact, _, err = s.Validate("Location", MustParsePath("USA/OR"))
	if err != nil || !exact {
		t.Fatalf("validate exact = %v %v", exact, err)
	}
	if _, _, err := s.Validate("Bogus", Top); err == nil {
		t.Fatal("unknown dimension should error")
	}
	kids, err := s.Subcategories("Location", MustParsePath("USA/WA"))
	if err != nil || len(kids) != 2 {
		t.Fatalf("subcategories = %v %v", kids, err)
	}
	if s.Hierarchy("Location") == nil || s.Hierarchy("X") != nil {
		t.Fatal("Hierarchy lookup broken")
	}
	if d := s.Dimensions(); len(d) != 1 || d[0] != "Location" {
		t.Fatalf("dimensions = %v", d)
	}
	if s.Describe() == "" {
		t.Fatal("describe empty")
	}
}

func randPath(r *rand.Rand) Path {
	segs := []string{"USA", "OR", "Portland", "WA", "Seattle", "France"}
	depth := r.Intn(4)
	out := make([]string, depth)
	for i := range out {
		out[i] = segs[r.Intn(len(segs))]
	}
	return NewPath(out...)
}

// Property: Covers is a partial order — reflexive, antisymmetric (up to
// Equal), transitive.
func TestPropertyCoversPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randPath(r), randPath(r), randPath(r)
		if !a.Covers(a) {
			return false
		}
		if a.Covers(b) && b.Covers(a) && !a.Equal(b) {
			return false
		}
		if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: LCA covers both arguments and is covered by any common ancestor
// prefix (here: checks LCA is the deepest common prefix).
func TestPropertyLCA(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPath(r), randPath(r)
		l := a.LCA(b)
		if !l.Covers(a) || !l.Covers(b) {
			return false
		}
		// Deepest: extending l by the next segment of a must not cover b
		// (unless a itself is exhausted).
		if l.Depth() < a.Depth() {
			ext := NewPath(append(l.Segments(), a.Segments()[l.Depth()])...)
			if ext.Covers(b) && ext.Covers(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: string round trip.
func TestPropertyPathRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPath(r)
		q, err := ParsePath(p.String())
		return err == nil && p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCovers(b *testing.B) {
	p := MustParsePath("USA/OR")
	q := MustParsePath("USA/OR/Portland")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Covers(q) {
			b.Fatal("cover failed")
		}
	}
}
