package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/xmltree"
)

// frame length-prefixes a payload the way WriteFrame does.
func frame(payload string) []byte {
	b := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(b, uint32(len(payload)))
	copy(b[4:], payload)
	return b
}

// FuzzRecv drives the receive path (recvAuto: frame auto-detection, length
// prefix validation, payload bounds, XML parse) with arbitrary bytes. The
// committed corpus in testdata/fuzz/FuzzRecv pins the framing edge cases:
// truncated and oversized length prefixes, zero-length frames, payloads cut
// off mid-frame, and the legacy raw stream.
//
// Properties: malformed input errors, never panics and never blocks; any
// accepted document survives a WriteFrame/ReadFrame round trip unchanged.
func FuzzRecv(f *testing.F) {
	f.Add(frame(`<mqp id="q" target="t:1"><plan><data/></plan></mqp>`))
	f.Add(frame(`<mqp id="q" target="t:1"><plan><urn name="urn:X:Y"/></plan>` +
		`<visited budget="3"><v fp="deadbeef42" n="2" s="meta:9020"/></visited></mqp>`))
	f.Add(frame(`<mqp id="q" target="t:1"><plan><urn name="urn:X:Y"/></plan>` +
		`<visited b="4">meta:9020 FnYrjV5vcIE<a s="s1:9020" u="urn:InterestArea:(USA.OR.Portland,Music.CDs)"/></visited></mqp>`))
	f.Add(frame(`<mqp id="q" target="t:1"><plan><data/></plan>` +
		`<visited><a s="s:1" u=""/></visited></mqp>`)) // malformed answered record: empty area
	f.Add([]byte{0, 0})                             // truncated length prefix
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, '<', 'a'}) // oversized length
	f.Add([]byte{0, 0, 0, 0})                       // zero-length frame
	f.Add(frame(`<a><b>x</b></a>`)[:10])            // EOF mid-frame
	f.Add(frame(`<a/>`)[:4])                        // prefix only, no payload
	f.Add([]byte(`<a attr="v"><b/>text</a>`))       // legacy raw stream
	f.Add([]byte("\n\t <a/>"))                      // legacy stream, leading whitespace
	f.Add([]byte(" \r\n"))                          // whitespace only
	f.Add(append(frame(`<a/>`), `<trailing/>`...))  // bytes beyond the frame
	f.Add(frame(`not xml at all`))                  // well-framed junk
	f.Add(frame(`<open><unclosed></open>`))         // well-framed bad XML

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, frame, err := recvAuto(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // malformed input must only error, never panic or hang
		}
		if frame == nil {
			t.Fatal("accepted document without a retained frame")
		}
		if !doc.Frozen() {
			t.Fatal("received document not frozen at birth")
		}
		if doc.ByteSize() > MaxFrameBytes {
			// Escaping can make the canonical form larger than the accepted
			// raw bytes; such a document legitimately cannot be re-framed.
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, doc); err != nil {
			t.Fatalf("re-framing an accepted document failed: %v", err)
		}
		doc2, _, err := ReadFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a written frame failed: %v", err)
		}
		if !xmltree.Equal(doc, doc2) {
			t.Fatalf("framing round trip changed the document:\n%s\nvs\n%s", doc, doc2)
		}
	})
}

// TestFrameRoundTrip pins the basic framed path end to end without fuzzing.
func TestFrameRoundTrip(t *testing.T) {
	want := xmltree.MustParse(`<mqp id="x"><plan><urn name="urn:a"/></plan></mqp>`)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, frame, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, want) {
		t.Fatalf("round trip: %s", got)
	}
	if len(frame) != got.ByteSize() {
		t.Fatalf("retained frame is %d bytes, document sizes to %d", len(frame), got.ByteSize())
	}
}

// TestReadFrameBounds pins each framing violation to an error.
func TestReadFrameBounds(t *testing.T) {
	cases := map[string][]byte{
		"truncated prefix": {0, 0, 0},
		"zero length":      {0, 0, 0, 0},
		"oversized":        {0xff, 0xff, 0xff, 0xff},
		"mid-frame EOF":    frame(`<a><b/></a>`)[:8],
		"framed junk":      frame(`]]>`),
	}
	for name, data := range cases {
		if _, _, err := ReadFrame(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadFrame accepted %q", name, data)
		}
	}
}

// TestRecvAcceptsBothFormats: the server must understand framed senders and
// legacy raw-stream senders on the same port — including legacy streams with
// leading whitespace, which the old EOF-stream parser tolerated.
func TestRecvAcceptsBothFormats(t *testing.T) {
	for name, data := range map[string][]byte{
		"framed":            frame(`<hello who="world"/>`),
		"legacy":            []byte(`<hello who="world"/>`),
		"legacy whitespace": []byte("\n\t <hello who=\"world\"/>"),
	} {
		doc, frame, err := recvAuto(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if doc.Name != "hello" {
			t.Fatalf("%s: got %s", name, doc)
		}
		if len(frame) == 0 {
			t.Fatalf("%s: no retained frame", name)
		}
	}
}

// TestWriteFrameAllocs pins the single-Write, near-zero-allocation send
// path: the frame is staged in a pooled buffer, not rebuilt per call.
func TestWriteFrameAllocs(t *testing.T) {
	doc := xmltree.MustParse(`<mqp id="x"><plan><data/></plan></mqp>`)
	var buf bytes.Buffer
	buf.Grow(1 << 12)
	allocs := testing.AllocsPerRun(100, func() {
		buf.Reset()
		if err := WriteFrame(&buf, doc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("WriteFrame allocates %.0f times per call; the pooled path should be ~0", allocs)
	}
}
