package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xmltree"
)

// Persistent multiplexed peer links.
//
// The one-document-per-connection transport pays a dial, a TCP handshake and
// a close for every hop. Peers that forward plan after plan to the same
// neighbors should instead keep one connection per neighbor and multiplex
// frames over it. A mux link opens with the 4-byte magic "MUX1" (the first
// byte 'M' cannot begin either legacy format: raw documents start with '<'
// and a valid length prefix for a ≤MaxFrameBytes frame starts with 0x00), and
// then carries frames of the form
//
//	4-byte big-endian payload length | 8-byte big-endian correlation id | payload
//
// in both directions. A frame with correlation id 0 is fire-and-forget; a
// nonzero id requests a reply frame carrying the same id, where a zero-length
// reply payload reports a remote handler failure. Concurrent senders share
// one link: writes are serialized per frame (each under its own
// WriteTimeout), replies are matched to waiters by correlation id.

// IdleTimeout is how long a pooled link may sit unused before the pool's
// opportunistic reaping closes it. The server closes its side of an idle link
// after ReadTimeout; the client bound is slightly longer so the common case
// is the server closing cleanly at a frame boundary first. A variable so
// tests can shorten it.
var IdleTimeout = 45 * time.Second

// linkMagic opens a version-1 multiplexed connection: frames immediately
// follow the magic and neither side advertises capabilities.
const linkMagic = "MUX1"

// linkMagic2 opens a version-2 multiplexed connection: the dialer's
// capability byte follows the magic, the server answers with its own
// capability byte, and frames follow. A MUX1-only server rejects the
// unknown magic and closes; the dialer detects the dead handshake and
// redials as MUX1 with no capabilities — mixed-version deployments
// degrade to inline-only payloads, never to a broken link.
const linkMagic2 = "MUX2"

// CapBlobRef advertises that this endpoint holds a content-addressed
// payload store and accepts <blob fp="..."/> by-reference payload sections
// (internal/blobstore); senders must keep payloads inline on links whose
// peer never advertised it.
const CapBlobRef byte = 0x01

// ErrRemote reports that the remote handler failed on a Call frame. The link
// itself is healthy: a remote failure is never grounds for a redial.
var ErrRemote = errors.New("wire: remote handler failed")

// errLinkBroken marks a link whose connection already failed; callers inside
// the pool redial instead of surfacing it.
var errLinkBroken = errors.New("wire: link broken")

// Link is one multiplexed connection to a peer. Many goroutines may send on
// a link concurrently; frame writes are serialized, replies are demultiplexed
// by a dedicated reader goroutine.
type Link struct {
	addr string
	conn net.Conn
	// peerCaps is the capability byte the server answered the MUX2
	// handshake with; zero on MUX1 links (legacy peers advertise nothing).
	peerCaps byte

	// wmu serializes whole frames onto the connection; each frame sets its
	// own write deadline, so one stalled frame cannot charge its wait to a
	// later sender's budget.
	wmu sync.Mutex

	corr atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan []byte
	broken  bool
	lastUse time.Time
}

// PeerCaps returns the capability byte the peer advertised during the
// handshake (zero on MUX1 links).
func (l *Link) PeerCaps() byte { return l.peerCaps }

func dialLink(addr string, caps byte, legacy bool) (*Link, error) {
	if caps != 0 && !legacy {
		l, err := dialLink2(addr, caps)
		if err == nil || !errors.Is(err, errLegacyPeer) {
			return l, err
		}
		// The peer rejected the MUX2 magic (a version-1 endpoint closes on
		// sight of it); fall through to a fresh MUX1 dial, inline-only.
	}
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(WriteTimeout))
	if _, err := conn.Write([]byte(linkMagic)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: link handshake to %s: %w", addr, err)
	}
	l := &Link{
		addr:    addr,
		conn:    conn,
		pending: map[uint64]chan []byte{},
		lastUse: time.Now(),
	}
	go l.readLoop()
	return l, nil
}

// errLegacyPeer marks a MUX2 handshake the peer cut short — the signature
// of a version-1 endpoint. The dialer retries as MUX1.
var errLegacyPeer = errors.New("wire: peer closed the MUX2 handshake")

// dialLink2 performs the version-2 handshake: magic, the local capability
// byte, then one capability byte back from the server before any frame.
func dialLink2(addr string, caps byte) (*Link, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(WriteTimeout))
	if _, err := conn.Write(append([]byte(linkMagic2), caps)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: link handshake to %s: %w", addr, err)
	}
	var reply [1]byte
	_ = conn.SetReadDeadline(time.Now().Add(ReadTimeout))
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		// The server never answered the capability exchange: a version-1
		// endpoint rejected the magic and closed. (A genuinely unreachable
		// host already failed the dial above.)
		conn.Close()
		return nil, errLegacyPeer
	}
	_ = conn.SetReadDeadline(time.Time{})
	l := &Link{
		addr:     addr,
		conn:     conn,
		peerCaps: reply[0],
		pending:  map[uint64]chan []byte{},
		lastUse:  time.Now(),
	}
	go l.readLoop()
	return l, nil
}

// readLoop delivers reply frames to their waiting callers. It runs for the
// life of the connection; any read error (including the peer idle-closing
// the link) marks the link broken and wakes every waiter.
func (l *Link) readLoop() {
	br := bufio.NewReader(l.conn)
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			l.fail()
			return
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		corr := binary.BigEndian.Uint64(hdr[4:12])
		if n > MaxFrameBytes {
			l.fail()
			return
		}
		var payload []byte
		if n > 0 {
			payload = make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				l.fail()
				return
			}
		}
		l.mu.Lock()
		ch := l.pending[corr]
		delete(l.pending, corr)
		l.mu.Unlock()
		if ch != nil {
			ch <- payload
		}
	}
}

// fail marks the link broken and wakes all reply waiters with a closed
// channel (distinct from a delivered zero-length payload, which means the
// remote handler failed).
func (l *Link) fail() {
	l.conn.Close()
	l.mu.Lock()
	l.broken = true
	for corr, ch := range l.pending {
		delete(l.pending, corr)
		close(ch)
	}
	l.mu.Unlock()
}

func (l *Link) isBroken() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

func (l *Link) touch() {
	l.mu.Lock()
	l.lastUse = time.Now()
	l.mu.Unlock()
}

// idle reports whether the link has no in-flight calls and has been unused
// since before cutoff.
func (l *Link) idle(cutoff time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending) == 0 && l.lastUse.Before(cutoff)
}

// send writes one frame (header plus the encoder's segments) as a single
// vectored write under a per-frame write deadline.
func (l *Link) send(corr uint64, enc *xmltree.FrameEncoder) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(enc.Len()))
	binary.BigEndian.PutUint64(hdr[4:12], corr)
	segs := enc.Segments()
	bufs := make(net.Buffers, 0, len(segs)+1)
	bufs = append(bufs, hdr[:])
	bufs = append(bufs, segs...)
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if l.isBroken() {
		return errLinkBroken
	}
	_ = l.conn.SetWriteDeadline(time.Now().Add(WriteTimeout))
	if _, err := bufs.WriteTo(l.conn); err != nil {
		// A write error leaves the stream position unknowable; the link is
		// unusable for everyone.
		l.fail()
		return fmt.Errorf("wire: send to %s: %w", l.addr, err)
	}
	l.touch()
	return nil
}

// call sends one frame with a fresh correlation id and waits for its reply.
func (l *Link) call(enc *xmltree.FrameEncoder) (*xmltree.Node, []byte, error) {
	corr := l.corr.Add(1)
	if corr == 0 { // 0 is the fire-and-forget id; skip it on wraparound
		corr = l.corr.Add(1)
	}
	ch := make(chan []byte, 1)
	l.mu.Lock()
	if l.broken {
		l.mu.Unlock()
		return nil, nil, errLinkBroken
	}
	l.pending[corr] = ch
	l.mu.Unlock()
	if err := l.send(corr, enc); err != nil {
		l.mu.Lock()
		delete(l.pending, corr)
		l.mu.Unlock()
		return nil, nil, err
	}
	timer := time.NewTimer(ReadTimeout)
	defer timer.Stop()
	select {
	case payload, ok := <-ch:
		if !ok {
			return nil, nil, fmt.Errorf("wire: link to %s broke awaiting reply", l.addr)
		}
		if len(payload) == 0 {
			return nil, nil, fmt.Errorf("wire: call to %s: %w", l.addr, ErrRemote)
		}
		doc, err := xmltree.Decode(payload)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: reply from %s: %w", l.addr, err)
		}
		return doc, payload, nil
	case <-timer.C:
		l.mu.Lock()
		delete(l.pending, corr)
		l.mu.Unlock()
		return nil, nil, fmt.Errorf("wire: call to %s: no reply within %v", l.addr, ReadTimeout)
	}
}

func (l *Link) close() { l.fail() }

// LinkPool keeps one multiplexed link per peer address and dials on demand.
// It is safe for concurrent use; all senders to one address share its link.
type LinkPool struct {
	mu    sync.Mutex
	links map[string]*Link
	dials map[string]*pendingDial
	// caps is the capability byte advertised on MUX2 dials; zero keeps
	// every dial on the version-1 handshake.
	caps byte
	// legacy remembers addresses whose peer rejected the MUX2 magic, so
	// each reconnection doesn't re-pay the probe dial. A legacy peer that
	// upgrades mid-flight stays inline-only until this pool is rebuilt —
	// correctness is unaffected, by-reference is only an optimization.
	legacy map[string]bool
}

// pendingDial single-flights connection establishment: a burst of first
// sends to one address performs one dial and shares the resulting link,
// instead of racing N connections for N-1 of them to be thrown away.
type pendingDial struct {
	done chan struct{}
	l    *Link
	err  error
}

// NewLinkPool returns an empty pool speaking the version-1 handshake.
func NewLinkPool() *LinkPool {
	return &LinkPool{links: map[string]*Link{}, dials: map[string]*pendingDial{}, legacy: map[string]bool{}}
}

// SetLocalCaps sets the capability byte advertised on future dials (MUX2);
// existing links are unaffected. Call before traffic starts.
func (p *LinkPool) SetLocalCaps(caps byte) {
	p.mu.Lock()
	p.caps = caps
	p.mu.Unlock()
}

// PeerCaps returns the capability byte the peer at addr advertised,
// dialing a link if none is cached. Zero means a version-1 peer (or a
// version-2 peer with nothing to advertise): payloads must stay inline.
func (p *LinkPool) PeerCaps(addr string) (byte, error) {
	l, _, err := p.get(addr)
	if err != nil {
		return 0, err
	}
	return l.PeerCaps(), nil
}

// get returns a healthy link to addr, dialing if necessary. cached reports
// whether the link predates this call — only a cached link's failure warrants
// a redial retry (it may simply have been idle-closed by the peer).
func (p *LinkPool) get(addr string) (l *Link, cached bool, err error) {
	now := time.Now()
	p.mu.Lock()
	p.reapLocked(now.Add(-IdleTimeout))
	if l := p.links[addr]; l != nil && !l.isBroken() {
		l.touch()
		p.mu.Unlock()
		return l, true, nil
	}
	delete(p.links, addr)
	if d := p.dials[addr]; d != nil {
		p.mu.Unlock()
		<-d.done
		if d.err != nil {
			return nil, false, d.err
		}
		// From the joiner's perspective the link predates its own send, so
		// a failure on it still earns the one redial retry.
		return d.l, true, nil
	}
	d := &pendingDial{done: make(chan struct{})}
	p.dials[addr] = d
	caps, legacy := p.caps, p.legacy[addr]
	p.mu.Unlock()

	l, err = dialLink(addr, caps, legacy)
	p.mu.Lock()
	delete(p.dials, addr)
	d.l, d.err = l, err
	if err == nil {
		p.links[addr] = l
		if caps != 0 && !legacy && l.PeerCaps() == 0 {
			// The MUX2 probe fell back (or the peer advertised nothing);
			// remember so reconnections skip the wasted probe dial.
			p.legacy[addr] = true
		}
	}
	p.mu.Unlock()
	close(d.done)
	if err != nil {
		return nil, false, err
	}
	return l, false, nil
}

// drop removes l from the pool (if still current) and closes it.
func (p *LinkPool) drop(l *Link) {
	p.mu.Lock()
	if p.links[l.addr] == l {
		delete(p.links, l.addr)
	}
	p.mu.Unlock()
	l.close()
}

// withLink runs op on a link to addr. If a cached link fails — stale links
// are expected: the peer idle-closes its side after ReadTimeout — the pool
// redials once and retries. A fresh dial's failure, or a remote handler
// error (the link is healthy), is returned as-is.
func (p *LinkPool) withLink(addr string, op func(*Link) error) error {
	l, cached, err := p.get(addr)
	if err != nil {
		return err
	}
	if err = op(l); err == nil || errors.Is(err, ErrRemote) {
		return err
	}
	p.drop(l)
	if !cached {
		return err
	}
	if l, _, err = p.get(addr); err != nil {
		return err
	}
	if err = op(l); err != nil && !errors.Is(err, ErrRemote) {
		p.drop(l)
	}
	return err
}

// stage fills a pooled frame encoder and bounds the result. An oversized
// document poisons only that frame: nothing has touched the wire, so the
// link keeps carrying other senders' frames.
func stage(fill func(*xmltree.FrameEncoder)) (*xmltree.FrameEncoder, error) {
	enc := xmltree.GetFrameEncoder()
	fill(enc)
	if enc.Len() == 0 {
		enc.Release()
		return nil, fmt.Errorf("wire: empty frame")
	}
	if enc.Len() > MaxFrameBytes {
		n := enc.Len()
		enc.Release()
		return nil, fmt.Errorf("wire: document of %d bytes exceeds frame limit %d", n, MaxFrameBytes)
	}
	return enc, nil
}

// SendFrame streams one fire-and-forget document to addr over the pooled
// link: fill stages the frame (typically algebra.EncodeFrame), and the bytes
// leave in a single vectored write — frozen payload segments go from their
// memoized serializations to the socket with no intermediate copy.
func (p *LinkPool) SendFrame(addr string, fill func(*xmltree.FrameEncoder)) error {
	enc, err := stage(fill)
	if err != nil {
		return err
	}
	defer enc.Release()
	return p.withLink(addr, func(l *Link) error { return l.send(0, enc) })
}

// Send streams one staged document to addr over the pooled link — the
// persistent-link replacement for the package-level Send.
func (p *LinkPool) Send(addr string, doc *xmltree.Node) error {
	return p.SendFrame(addr, func(e *xmltree.FrameEncoder) { e.Node(doc) })
}

// Call streams one document to addr and waits for the correlated reply,
// returning it with its retained frame buffer (see ReadFrame for the
// ownership rule). A zero-length reply reports a remote handler failure as
// ErrRemote.
func (p *LinkPool) Call(addr string, fill func(*xmltree.FrameEncoder)) (*xmltree.Node, []byte, error) {
	enc, err := stage(fill)
	if err != nil {
		return nil, nil, err
	}
	defer enc.Release()
	var doc *xmltree.Node
	var frame []byte
	err = p.withLink(addr, func(l *Link) error {
		var cerr error
		doc, frame, cerr = l.call(enc)
		return cerr
	})
	return doc, frame, err
}

// ReapIdle closes and removes links that have no in-flight calls and have
// been unused for longer than olderThan, returning how many were reaped.
// The pool also reaps opportunistically (at IdleTimeout) on every use.
func (p *LinkPool) ReapIdle(olderThan time.Duration) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reapLocked(time.Now().Add(-olderThan))
}

func (p *LinkPool) reapLocked(cutoff time.Time) int {
	n := 0
	for addr, l := range p.links {
		if l.isBroken() || l.idle(cutoff) {
			delete(p.links, addr)
			l.close()
			n++
		}
	}
	return n
}

// Close closes every pooled link.
func (p *LinkPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, l := range p.links {
		delete(p.links, addr)
		l.close()
	}
	return nil
}
