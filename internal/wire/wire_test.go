package wire

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/xmltree"
)

func TestSendReceive(t *testing.T) {
	got := make(chan *xmltree.Node, 1)
	srv, err := Listen("127.0.0.1:0", func(doc *xmltree.Node) (*xmltree.Node, error) {
		got <- doc
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want := xmltree.MustParse(`<hello who="world"/>`)
	if err := Send(srv.Addr(), want); err != nil {
		t.Fatal(err)
	}
	select {
	case doc := <-got:
		if !xmltree.Equal(doc, want) {
			t.Fatalf("received %s", doc)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestSendToNowhere(t *testing.T) {
	if err := Send("127.0.0.1:1", xmltree.Elem("x")); err == nil {
		t.Fatal("dial to closed port must error")
	}
}

func TestHandlerErrorReported(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", func(doc *xmltree.Node) (*xmltree.Node, error) {
		return nil, fmt.Errorf("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := Send(srv.Addr(), xmltree.Elem("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-srv.Errors():
		if err == nil {
			t.Fatal("expected handler error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for error")
	}
}

// TestRealTCPRegistration pushes a registration document over TCP and
// verifies the receiving catalog accepted it.
func TestRealTCPRegistration(t *testing.T) {
	loc := hierarchy.New("Location")
	loc.MustAdd("USA/OR/Portland")
	merch := hierarchy.New("Merchandise")
	merch.MustAdd("Music/CDs")
	ns := namespace.MustNew(loc, merch)
	cat := catalog.New(ns, "idx")

	accepted := make(chan struct{}, 1)
	srv, err := Listen("127.0.0.1:0", func(doc *xmltree.Node) (*xmltree.Node, error) {
		reg, err := catalog.UnmarshalRegistration(ns, doc)
		if err != nil {
			return nil, err
		}
		if err := cat.Register(reg); err != nil {
			return nil, err
		}
		accepted <- struct{}{}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	area := ns.MustParseArea("[USA/OR/Portland, Music/CDs]")
	reg := catalog.Registration{
		Addr: "seller:9020", Role: catalog.RoleBase, Area: area,
		Collections: []catalog.Collection{{Name: "cds", PathExp: "/d", Area: area}},
	}
	if err := Send(srv.Addr(), catalog.MarshalRegistration(reg)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("registration not accepted")
	}
	if got := cat.Registrations(); len(got) != 1 || got[0].Addr != "seller:9020" {
		t.Fatalf("registrations = %+v", got)
	}
	b, err := cat.Resolve(namespace.EncodeURN(area))
	if err != nil || b.Expr == nil {
		t.Fatalf("binding after TCP registration: %+v, %v", b, err)
	}
}

// TestRealTCPMQPChain runs a two-server MQP evaluation over actual TCP
// sockets: the same processor code as the simulation, real transport.
func TestRealTCPMQPChain(t *testing.T) {
	loc := hierarchy.New("Location")
	loc.MustAdd("USA/OR/Portland")
	merch := hierarchy.New("Merchandise")
	merch.MustAdd("Music/CDs")
	ns := namespace.MustNew(loc, merch)

	items := []*xmltree.Node{
		xmltree.MustParse(`<sale><cd>A</cd><price>5</price></sale>`),
		xmltree.MustParse(`<sale><cd>B</cd><price>20</price></sale>`),
	}

	// Result sink (plays mqpquery's role).
	results := make(chan *algebra.Plan, 1)
	sink, err := Listen("127.0.0.1:0", func(doc *xmltree.Node) (*xmltree.Node, error) {
		p, err := algebra.Unmarshal(doc)
		if err != nil {
			return nil, err
		}
		results <- p
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// Base server with data; address known only after listen, so bind the
	// processor lazily.
	var baseProc *mqp.Processor
	base, err := Listen("127.0.0.1:0", func(doc *xmltree.Node) (*xmltree.Node, error) {
		plan, err := algebra.Unmarshal(doc)
		if err != nil {
			return nil, err
		}
		out, err := baseProc.Step(plan)
		if err != nil {
			return nil, err
		}
		dest := out.NextHop
		if out.Done {
			dest = plan.Target
		}
		return nil, Send(dest, algebra.Marshal(plan))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	baseProc, err = mqp.New(mqp.Config{
		Self:    base.Addr(),
		Catalog: catalog.New(ns, base.Addr()),
		FetchLocal: func(_ *mqp.StepContext, _ string, pathExp string) ([]*xmltree.Node, int, error) {
			return items, 0, nil
		},
		PushSelect: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Meta server with the alias to the base server.
	metaCat := catalog.New(ns, "meta")
	metaCat.AddAlias("urn:Demo:CDs", "http://"+base.Addr()+"/data")
	var metaProc *mqp.Processor
	meta, err := Listen("127.0.0.1:0", func(doc *xmltree.Node) (*xmltree.Node, error) {
		plan, err := algebra.Unmarshal(doc)
		if err != nil {
			return nil, err
		}
		out, err := metaProc.Step(plan)
		if err != nil {
			return nil, err
		}
		dest := out.NextHop
		if out.Done {
			dest = plan.Target
		}
		return nil, Send(dest, algebra.Marshal(plan))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer meta.Close()
	metaProc, err = mqp.New(mqp.Config{Self: meta.Addr(), Catalog: metaCat, PushSelect: true})
	if err != nil {
		t.Fatal(err)
	}

	plan := algebra.NewPlan("tcp-q", sink.Addr(), algebra.Display(
		algebra.Select(algebra.MustParsePredicate("price < 10"), algebra.URN("urn:Demo:CDs"))))
	if err := Send(meta.Addr(), algebra.Marshal(plan)); err != nil {
		t.Fatal(err)
	}

	select {
	case res := <-results:
		got, err := res.Results()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Value("cd") != "A" {
			t.Fatalf("results = %v", got)
		}
	case err := <-sink.Errors():
		t.Fatal(err)
	case err := <-base.Errors():
		t.Fatal(err)
	case err := <-meta.Errors():
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for TCP MQP result")
	}
}
