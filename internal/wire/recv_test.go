package wire

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/xmltree"
)

func TestRecvReadsOneDocument(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		defer client.Close()
		_, _ = xmltree.MustParse(`<mqp id="r"><plan><data/></plan></mqp>`).WriteTo(client)
	}()
	doc, frame, err := Recv(server)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "mqp" || doc.AttrDefault("id", "") != "r" {
		t.Fatalf("got %s", doc.String())
	}
	// The retained frame is the exact raw stream; the decoded document is
	// frozen at birth and aliases it.
	if string(frame) != doc.String() {
		t.Fatalf("retained frame %q differs from canonical form %q", frame, doc.String())
	}
	if !doc.Frozen() {
		t.Fatal("received document not frozen")
	}
}

// TestRecvTimesOut pins the read deadline: a peer that connects and then
// goes silent must not block the receiver past ReadTimeout.
func TestRecvTimesOut(t *testing.T) {
	old := ReadTimeout
	ReadTimeout = 100 * time.Millisecond
	defer func() { ReadTimeout = old }()

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	start := time.Now()
	_, _, err := Recv(server) // client never writes
	if err == nil {
		t.Fatal("Recv of a silent connection must error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Recv blocked %v; deadline not applied", elapsed)
	}
}

// TestServerHandlesSilentConnection checks the deadline end to end: a TCP
// client that connects and stalls produces a handler-side read error
// instead of a leaked goroutine, and the server keeps serving afterwards.
func TestServerHandlesSilentConnection(t *testing.T) {
	old := ReadTimeout
	ReadTimeout = 100 * time.Millisecond
	defer func() { ReadTimeout = old }()

	got := make(chan string, 1)
	srv, err := Listen("127.0.0.1:0", func(doc *xmltree.Node) (*xmltree.Node, error) {
		got <- doc.Name
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stall, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()

	select {
	case err := <-srv.Errors():
		if !strings.Contains(err.Error(), "recv") {
			t.Fatalf("unexpected server error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never timed out the silent connection")
	}

	// The server still accepts and handles real traffic.
	if err := Send(srv.Addr(), xmltree.Elem("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case name := <-got:
		if name != "ping" {
			t.Fatalf("handler got <%s>", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never ran after the stalled connection")
	}
}
