// Package wire is the minimal TCP transport used by cmd/mqpd and
// cmd/mqpquery: one canonical XML document per connection. It exists so the
// same MQP processor that runs on the simulated network can serve real
// sockets.
//
// Framing: Send writes a 4-byte big-endian length prefix followed by the
// canonical XML bytes, which bounds message size (MaxFrameBytes) and lets a
// reply travel on the same connection without waiting for a half-close.
// Recv auto-detects the frame: a first byte of '<' is the legacy
// EOF-delimited raw stream (older senders keep working), anything else is a
// length prefix.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/xmltree"
)

// DialTimeout bounds connection establishment.
const DialTimeout = 5 * time.Second

// WriteTimeout bounds how long one frame write may block. On a multiplexed
// link the deadline is re-armed per frame — a connection that has been open
// for minutes still gets the full budget for each new frame, and one
// stalling reader cannot charge its delay to a later sender's frame. A
// variable (not a const) so tests can shorten it.
var WriteTimeout = 30 * time.Second

// ReadTimeout bounds how long Recv may block reading a document — the
// read-side counterpart of WriteTimeout, so a peer that connects and then
// stalls cannot pin a handler goroutine forever. A variable (not a const)
// so tests can shorten it.
var ReadTimeout = 30 * time.Second

// MaxFrameBytes bounds a framed document: a peer cannot commit the receiver
// to an arbitrarily large allocation by lying in the length prefix.
const MaxFrameBytes = 8 << 20

// Send connects to addr, writes one framed document, and closes. It is the
// fire-and-forget MQP forwarding primitive. The frame is assembled in one
// buffer and hits the socket as a single Write, so a plan of any depth costs
// one syscall, not one per element.
func Send(addr string, doc *xmltree.Node) error {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetWriteDeadline(time.Now().Add(WriteTimeout))
	if err := WriteFrame(conn, doc); err != nil {
		return fmt.Errorf("wire: send to %s: %w", addr, err)
	}
	return nil
}

// framePool stages outgoing frames so a send costs no steady-state
// allocation: header and document share one buffer and hit the writer as a
// single Write.
var framePool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// WriteFrame writes one length-prefixed canonical XML document in a single
// Write.
func WriteFrame(w io.Writer, doc *xmltree.Node) error {
	buf := framePool.Get().(*bytes.Buffer)
	defer framePool.Put(buf)
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := doc.WriteTo(buf); err != nil {
		return err
	}
	n := buf.Len() - 4
	if n > MaxFrameBytes {
		return fmt.Errorf("wire: document of %d bytes exceeds frame limit %d", n, MaxFrameBytes)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b, uint32(n))
	_, err := w.Write(b)
	return err
}

// ReadFrame reads one length-prefixed document and returns it together with
// the retained frame buffer the document's nodes alias. Truncated prefixes,
// zero-length and oversized frames, and payloads cut off mid-frame are all
// errors — never a hang on a stream that will not grow, and never a parse of
// bytes beyond the declared length.
//
// Ownership: the returned frame is retained by the document — names, text
// and attribute values of the decoded nodes are zero-copy slices into it.
// The frame must never be modified or reused while any node from the
// document is reachable (the xmltree born-frozen rule); it is returned so
// callers can account its exact wire size or archive the raw bytes.
func ReadFrame(r io.Reader) (*xmltree.Node, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("wire: frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, nil, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrameBytes {
		return nil, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	// ReadAll over a LimitReader grows the buffer as bytes actually arrive,
	// so a lying length prefix costs the receiver nothing up front.
	payload, err := io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, nil, fmt.Errorf("wire: frame payload: %w", err)
	}
	if len(payload) != int(n) {
		return nil, nil, fmt.Errorf("wire: frame truncated: have %d of %d bytes: %w",
			len(payload), n, io.ErrUnexpectedEOF)
	}
	doc, err := xmltree.Decode(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: frame body: %w", err)
	}
	return doc, payload, nil
}

// ReadDoc reads one XML document from r (until EOF) — the legacy unframed
// stream format. The stream is buffered into the same retained-frame shape
// as ReadFrame, then zero-copy decoded, so legacy senders feed the exact
// receive path framed senders do.
func ReadDoc(r io.Reader) (*xmltree.Node, []byte, error) {
	buf, err := io.ReadAll(io.LimitReader(r, MaxFrameBytes+1))
	if err != nil {
		return nil, nil, fmt.Errorf("wire: raw stream: %w", err)
	}
	if len(buf) > MaxFrameBytes {
		return nil, nil, fmt.Errorf("wire: raw document exceeds frame limit %d", MaxFrameBytes)
	}
	doc, err := xmltree.Decode(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: raw document: %w", err)
	}
	return doc, buf, nil
}

// recvAuto reads one document in either wire format. Leading XML whitespace
// is skipped first (legacy raw senders may emit it, and the old EOF-stream
// parser tolerated it); after that, '<' means a raw document and anything
// else is a frame's length prefix — a valid prefix for a ≤MaxFrameBytes
// frame always starts with 0x00, so the two formats cannot collide.
func recvAuto(br *bufio.Reader) (*xmltree.Node, []byte, error) {
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, nil, err
		}
		switch b[0] {
		case ' ', '\t', '\r', '\n':
			_, _ = br.ReadByte()
		case '<':
			return ReadDoc(br)
		default:
			return ReadFrame(br)
		}
	}
}

// Recv reads one document from a connection under ReadTimeout and returns
// it with its retained frame buffer (see ReadFrame). It is the receive-side
// primitive symmetric to Send: every server connection goes through it, so
// a slow or silent sender times out instead of leaking a goroutine. Both
// framed and legacy raw-stream senders are accepted.
func Recv(conn net.Conn) (*xmltree.Node, []byte, error) {
	_ = conn.SetReadDeadline(time.Now().Add(ReadTimeout))
	doc, frame, err := recvAuto(bufio.NewReader(conn))
	if err != nil {
		return nil, nil, fmt.Errorf("wire: recv from %s: %w", conn.RemoteAddr(), err)
	}
	return doc, frame, nil
}

// Handler processes one received document. A non-nil reply is written back
// on the same connection before it closes.
type Handler func(doc *xmltree.Node) (reply *xmltree.Node, err error)

// Server accepts one-document connections and dispatches to a Handler.
type Server struct {
	ln   net.Listener
	errs chan error

	mu     sync.Mutex
	caps   byte
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// SetCaps sets the capability byte this server answers MUX2 handshakes
// with (e.g. CapBlobRef when a payload store backs the handler). Call it
// before traffic; links already negotiated keep their original answer.
func (s *Server) SetCaps(caps byte) {
	s.mu.Lock()
	s.caps = caps
	s.mu.Unlock()
}

// Caps returns the advertised capability byte.
func (s *Server) Caps() byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.caps
}

// Listen starts a server on addr. Handler errors are reported on Errors().
func Listen(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, errs: make(chan error, 16)}
	go s.loop(h)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Errors exposes handler and accept errors.
func (s *Server) Errors() <-chan error { return s.errs }

// Close stops accepting, closes every live connection (persistent links
// included), and waits for their handler goroutines to finish — after Close
// returns, no server goroutine touches the Handler, the connections, or
// package state like the timeout variables.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// track registers a live connection, refusing it when the server is already
// closed (Accept can race Close and hand over one last connection).
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

func (s *Server) loop(h Handler) {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case s.errs <- err:
			default:
			}
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		go func() {
			defer s.untrack(conn)
			s.handle(conn, h)
		}()
	}
}

func (s *Server) handle(conn net.Conn, h Handler) {
	defer conn.Close()
	report := func(err error) {
		select {
		case s.errs <- err:
		default:
		}
	}
	// Sniff the transport: a multiplexed link announces itself with the
	// "MUX1" magic, whose first byte can begin neither legacy format (raw
	// documents start with '<' or whitespace, and a valid length prefix for
	// a ≤MaxFrameBytes frame starts with 0x00).
	_ = conn.SetReadDeadline(time.Now().Add(ReadTimeout))
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		report(fmt.Errorf("wire: recv from %s: %w", conn.RemoteAddr(), err))
		return
	}
	if first[0] == linkMagic[0] {
		s.serveLink(conn, br, h, report)
		return
	}
	doc, _, err := recvAuto(br)
	if err != nil {
		report(fmt.Errorf("wire: recv from %s: %w", conn.RemoteAddr(), err))
		return
	}
	reply, err := h(doc)
	if err != nil {
		report(err)
		return
	}
	if reply != nil {
		if err := WriteFrame(conn, reply); err != nil {
			report(fmt.Errorf("wire: reply: %w", err))
		}
	}
}

// serveLink runs the multiplexed-link loop: many frames on one connection,
// each processed inline and answered on the same connection when it carries
// a nonzero correlation id. A handler failure poisons only its frame — a
// zero-length reply reports it to a caller, and the loop reads on. The
// connection closes cleanly when the client side goes away or idles past
// ReadTimeout at a frame boundary; only a death mid-frame is reported.
func (s *Server) serveLink(conn net.Conn, br *bufio.Reader, h Handler, report func(error)) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		report(fmt.Errorf("wire: bad link magic from %s", conn.RemoteAddr()))
		return
	}
	switch string(magic[:]) {
	case linkMagic:
		// Version 1: no capability exchange, frames follow immediately.
	case linkMagic2:
		// Version 2: the dialer's capability byte follows the magic and the
		// server answers with its own before the first frame.
		var peer [1]byte
		if _, err := io.ReadFull(br, peer[:]); err != nil {
			report(fmt.Errorf("wire: MUX2 capability byte from %s: %w", conn.RemoteAddr(), err))
			return
		}
		_ = conn.SetWriteDeadline(time.Now().Add(WriteTimeout))
		if _, err := conn.Write([]byte{s.Caps()}); err != nil {
			report(fmt.Errorf("wire: MUX2 capability reply to %s: %w", conn.RemoteAddr(), err))
			return
		}
	default:
		report(fmt.Errorf("wire: bad link magic from %s", conn.RemoteAddr()))
		return
	}
	var hdr [12]byte
	for {
		// Waiting for the next frame is bounded by ReadTimeout; reaching it
		// (or EOF) between frames is the normal end of an idle link.
		_ = conn.SetReadDeadline(time.Now().Add(ReadTimeout))
		if _, err := br.Peek(1); err != nil {
			return
		}
		// A frame has begun: give its header and payload a fresh budget so a
		// frame that arrives just before the idle deadline is not truncated.
		_ = conn.SetReadDeadline(time.Now().Add(ReadTimeout))
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			report(fmt.Errorf("wire: link frame header from %s: %w", conn.RemoteAddr(), err))
			return
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		corr := binary.BigEndian.Uint64(hdr[4:12])
		if n == 0 || n > MaxFrameBytes {
			report(fmt.Errorf("wire: link frame of %d bytes from %s out of bounds", n, conn.RemoteAddr()))
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			report(fmt.Errorf("wire: link frame payload from %s: %w", conn.RemoteAddr(), err))
			return
		}
		doc, err := xmltree.Decode(payload)
		var reply *xmltree.Node
		if err == nil {
			reply, err = h(doc)
		}
		if err != nil {
			report(err)
		}
		if corr == 0 {
			continue
		}
		if err := writeLinkReply(conn, corr, reply, err); err != nil {
			report(fmt.Errorf("wire: link reply to %s: %w", conn.RemoteAddr(), err))
			return
		}
	}
}

// writeLinkReply answers one correlated frame: the staged reply document, or
// a zero-length payload reporting a handler failure (or a handler that had
// nothing to say).
func writeLinkReply(conn net.Conn, corr uint64, reply *xmltree.Node, herr error) error {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[4:12], corr)
	_ = conn.SetWriteDeadline(time.Now().Add(WriteTimeout))
	if herr != nil || reply == nil {
		_, err := conn.Write(hdr[:])
		return err
	}
	enc := xmltree.GetFrameEncoder()
	defer enc.Release()
	enc.Node(reply)
	if enc.Len() > MaxFrameBytes {
		_, err := conn.Write(hdr[:]) // oversized reply degrades to a failure report
		return err
	}
	binary.BigEndian.PutUint32(hdr[0:4], uint32(enc.Len()))
	segs := enc.Segments()
	bufs := make(net.Buffers, 0, len(segs)+1)
	bufs = append(bufs, hdr[:])
	bufs = append(bufs, segs...)
	_, err := bufs.WriteTo(conn)
	return err
}
