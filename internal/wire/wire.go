// Package wire is the minimal TCP transport used by cmd/mqpd and
// cmd/mqpquery: one canonical XML document per connection, EOF-delimited.
// It exists so the same MQP processor that runs on the simulated network
// can serve real sockets.
package wire

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/xmltree"
)

// DialTimeout bounds connection establishment.
const DialTimeout = 5 * time.Second

// WriteTimeout bounds how long Send may block writing a document.
const WriteTimeout = 30 * time.Second

// ReadTimeout bounds how long Recv may block reading a document — the
// read-side counterpart of WriteTimeout, so a peer that connects and then
// stalls cannot pin a handler goroutine forever. A variable (not a const)
// so tests can shorten it.
var ReadTimeout = 30 * time.Second

// Send connects to addr, writes one document, and closes. It is the
// fire-and-forget MQP forwarding primitive. The document is staged in a
// pooled buffer by xmltree and hits the socket as a single Write, so a plan
// of any depth costs one syscall, not one per element.
func Send(addr string, doc *xmltree.Node) error {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetWriteDeadline(time.Now().Add(WriteTimeout))
	if _, err := doc.WriteTo(conn); err != nil {
		return fmt.Errorf("wire: send to %s: %w", addr, err)
	}
	return nil
}

// ReadDoc reads one XML document from r (until EOF).
func ReadDoc(r io.Reader) (*xmltree.Node, error) {
	return xmltree.Parse(r)
}

// Recv reads one document from a connection under ReadTimeout. It is the
// receive-side primitive symmetric to Send: every server connection goes
// through it, so a slow or silent sender times out instead of leaking a
// goroutine.
func Recv(conn net.Conn) (*xmltree.Node, error) {
	_ = conn.SetReadDeadline(time.Now().Add(ReadTimeout))
	doc, err := ReadDoc(conn)
	if err != nil {
		return nil, fmt.Errorf("wire: recv from %s: %w", conn.RemoteAddr(), err)
	}
	return doc, nil
}

// Handler processes one received document. A non-nil reply is written back
// on the same connection before it closes.
type Handler func(doc *xmltree.Node) (reply *xmltree.Node, err error)

// Server accepts one-document connections and dispatches to a Handler.
type Server struct {
	ln   net.Listener
	errs chan error
}

// Listen starts a server on addr. Handler errors are reported on Errors().
func Listen(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, errs: make(chan error, 16)}
	go s.loop(h)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Errors exposes handler and accept errors.
func (s *Server) Errors() <-chan error { return s.errs }

// Close stops accepting.
func (s *Server) Close() error { return s.ln.Close() }

func (s *Server) loop(h Handler) {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case s.errs <- err:
			default:
			}
			return
		}
		go s.handle(conn, h)
	}
}

func (s *Server) handle(conn net.Conn, h Handler) {
	defer conn.Close()
	report := func(err error) {
		select {
		case s.errs <- err:
		default:
		}
	}
	doc, err := Recv(conn)
	if err != nil {
		report(err)
		return
	}
	reply, err := h(doc)
	if err != nil {
		report(err)
		return
	}
	if reply != nil {
		if _, err := reply.WriteTo(conn); err != nil {
			report(fmt.Errorf("wire: reply: %w", err))
		}
	}
}
