package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xmltree"
)

// countingListener counts accepted connections so tests can prove link reuse
// (many frames, one connection) and re-establishment (reap, then dial anew).
type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (c *countingListener) Accept() (net.Conn, error) {
	conn, err := c.Listener.Accept()
	if err == nil {
		c.accepts.Add(1)
	}
	return conn, err
}

// listenCounting starts a Server on an ephemeral port with accept counting.
func listenCounting(t *testing.T, h Handler) (*Server, *countingListener) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &countingListener{Listener: ln}
	s := &Server{ln: cl, errs: make(chan error, 16)}
	go s.loop(h)
	t.Cleanup(func() { s.Close() })
	return s, cl
}

// TestLinkConcurrentSenders: many goroutines share one link; every caller
// gets the reply correlated to its own frame, and the whole exchange rides a
// single TCP connection.
func TestLinkConcurrentSenders(t *testing.T) {
	srv, cl := listenCounting(t, func(doc *xmltree.Node) (*xmltree.Node, error) {
		return doc, nil // echo
	})
	pool := NewLinkPool()
	defer pool.Close()

	const senders, perSender = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, senders*perSender)
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				id := fmt.Sprintf("s%d-f%d", g, i)
				doc := xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: id})
				reply, _, err := pool.Call(srv.Addr(), func(e *xmltree.FrameEncoder) { e.Node(doc) })
				if err != nil {
					errs <- err
					return
				}
				if got := reply.AttrDefault("id", ""); got != id {
					errs <- fmt.Errorf("reply correlation broken: sent %s, got %s", id, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := cl.accepts.Load(); n != 1 {
		t.Fatalf("%d frames used %d connections, want 1", senders*perSender, n)
	}
}

// TestLinkFireAndForgetAndLegacyCoexist: corr-0 frames stream over one
// connection, while a legacy one-document sender talks to the same listener
// through auto-detection.
func TestLinkFireAndForgetAndLegacyCoexist(t *testing.T) {
	got := make(chan string, 64)
	srv, cl := listenCounting(t, func(doc *xmltree.Node) (*xmltree.Node, error) {
		got <- doc.AttrDefault("id", "")
		return nil, nil
	})
	pool := NewLinkPool()
	defer pool.Close()

	const frames = 10
	for i := 0; i < frames; i++ {
		doc := xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: fmt.Sprintf("f%d", i)})
		if err := pool.Send(srv.Addr(), doc); err != nil {
			t.Fatal(err)
		}
	}
	// Legacy framed sender (dial-per-document) on the same listener.
	if err := Send(srv.Addr(), xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "legacy"})); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < frames+1; i++ {
		select {
		case id := <-got:
			seen[id] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d of %d documents", len(seen), frames+1)
		}
	}
	if !seen["legacy"] || len(seen) != frames+1 {
		t.Fatalf("missing documents: %v", seen)
	}
	if n := cl.accepts.Load(); n != 2 { // one link + one legacy connection
		t.Fatalf("accepts = %d, want 2", n)
	}
}

// TestLinkBrokenRedial: a peer that dies mid-conversation yields a clean
// error, and the next use of the pool re-establishes a fresh link to the
// restarted peer.
func TestLinkBrokenRedial(t *testing.T) {
	got := make(chan string, 16)
	h := func(doc *xmltree.Node) (*xmltree.Node, error) {
		got <- doc.AttrDefault("id", "")
		return nil, nil
	}
	srv, _ := listenCounting(t, h)
	addr := srv.Addr()
	pool := NewLinkPool()
	defer pool.Close()

	if err := pool.Send(addr, xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "a"})); err != nil {
		t.Fatal(err)
	}
	<-got

	// Kill the server; the pooled link is now stale.
	srv.Close()
	// Give the reader goroutine a moment to observe the close.
	deadline := time.Now().Add(2 * time.Second)
	pool.mu.Lock()
	l := pool.links[addr]
	pool.mu.Unlock()
	for l != nil && !l.isBroken() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Restart on the same address and send again: the pool must redial.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := &Server{ln: ln, errs: make(chan error, 16)}
	go srv2.loop(h)
	defer srv2.Close()

	if err := pool.Send(addr, xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "b"})); err != nil {
		t.Fatalf("send after peer restart: %v", err)
	}
	select {
	case id := <-got:
		if id != "b" {
			t.Fatalf("got %q after restart", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("document lost after redial")
	}
}

// TestLinkMidFrameCrashReported: a client dying mid-frame is a reported
// server error; dying at a frame boundary is a clean close.
func TestLinkMidFrameCrashReported(t *testing.T) {
	srv, _ := listenCounting(t, func(doc *xmltree.Node) (*xmltree.Node, error) { return nil, nil })

	// Clean: magic, one whole frame, close at the boundary.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte(linkMagic))
	payload := []byte(`<mqp id="x"/>`)
	hdr := make([]byte, 12)
	hdr[3] = byte(len(payload))
	conn.Write(hdr)
	conn.Write(payload)
	conn.Close()

	// Dirty: magic, a header promising 13 bytes, then death after 3.
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn2.Write([]byte(linkMagic))
	conn2.Write(hdr)
	conn2.Write(payload[:3])
	conn2.Close()

	select {
	case err := <-srv.Errors():
		if !strings.Contains(err.Error(), "payload") {
			t.Fatalf("unexpected error for mid-frame death: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mid-frame death never reported")
	}
	// The clean close must not have queued an error.
	select {
	case err := <-srv.Errors():
		t.Fatalf("clean boundary close reported: %v", err)
	default:
	}
}

// TestLinkIdleReapReestablish: a reaped link is gone from the pool, and the
// next send dials a new connection transparently.
func TestLinkIdleReapReestablish(t *testing.T) {
	got := make(chan string, 16)
	srv, cl := listenCounting(t, func(doc *xmltree.Node) (*xmltree.Node, error) {
		got <- doc.AttrDefault("id", "")
		return nil, nil
	})
	pool := NewLinkPool()
	defer pool.Close()

	if err := pool.Send(srv.Addr(), xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "a"})); err != nil {
		t.Fatal(err)
	}
	<-got
	if n := pool.ReapIdle(0); n != 1 {
		t.Fatalf("ReapIdle reaped %d links, want 1", n)
	}
	pool.mu.Lock()
	left := len(pool.links)
	pool.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d links survive reaping", left)
	}
	if err := pool.Send(srv.Addr(), xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "b"})); err != nil {
		t.Fatalf("send after reap: %v", err)
	}
	<-got
	if n := cl.accepts.Load(); n != 2 {
		t.Fatalf("accepts = %d, want 2 (one per link generation)", n)
	}
}

// TestLinkOversizeFramePoisonsFrameOnly: a document exceeding MaxFrameBytes
// fails before touching the wire; the link keeps carrying other frames.
func TestLinkOversizeFramePoisonsFrameOnly(t *testing.T) {
	got := make(chan string, 16)
	srv, cl := listenCounting(t, func(doc *xmltree.Node) (*xmltree.Node, error) {
		got <- doc.AttrDefault("id", "")
		return nil, nil
	})
	pool := NewLinkPool()
	defer pool.Close()

	if err := pool.Send(srv.Addr(), xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "a"})); err != nil {
		t.Fatal(err)
	}
	<-got

	huge := xmltree.Elem("mqp", xmltree.ElemText("t", strings.Repeat("x", MaxFrameBytes+1)))
	if err := pool.Send(srv.Addr(), huge); err == nil {
		t.Fatal("oversized frame accepted")
	} else if !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("unexpected oversize error: %v", err)
	}

	if err := pool.Send(srv.Addr(), xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "b"})); err != nil {
		t.Fatalf("send after oversized frame: %v", err)
	}
	<-got
	if n := cl.accepts.Load(); n != 1 {
		t.Fatalf("accepts = %d, want 1 — the oversized frame must not break the link", n)
	}
}

// TestLinkWriteDeadlinePerFrame: the write deadline is armed per frame, not
// per connection. A link older than WriteTimeout must still send instantly
// (the old per-connection deadline would fail here), and a genuinely
// stalling reader must surface a timeout error in ~WriteTimeout rather than
// blocking forever.
func TestLinkWriteDeadlinePerFrame(t *testing.T) {
	oldW := WriteTimeout
	WriteTimeout = 500 * time.Millisecond
	defer func() { WriteTimeout = oldW }()

	got := make(chan string, 16)
	srv, _ := listenCounting(t, func(doc *xmltree.Node) (*xmltree.Node, error) {
		got <- doc.AttrDefault("id", "")
		return nil, nil
	})
	pool := NewLinkPool()
	defer pool.Close()

	if err := pool.Send(srv.Addr(), xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "a"})); err != nil {
		t.Fatal(err)
	}
	<-got
	// Outlive the deadline that was armed for the first frame; the next
	// frame must re-arm rather than inherit an expired deadline.
	time.Sleep(WriteTimeout + 200*time.Millisecond)
	if err := pool.Send(srv.Addr(), xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "b"})); err != nil {
		t.Fatalf("send on aged link hit a stale deadline: %v", err)
	}
	<-got

	// Stalling reader: accepts and then never reads. Filling the kernel
	// buffers with 4MiB frames must end in a timeout, not a hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(10 * time.Second) // never read
	}()
	l, err := dialLink(ln.Addr().String(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()
	big := xmltree.Elem("mqp", xmltree.ElemText("t", strings.Repeat("y", 4<<20)))
	enc := xmltree.GetFrameEncoder()
	defer enc.Release()
	enc.Node(big)
	start := time.Now()
	for i := 0; i < 64; i++ {
		if err = l.send(0, enc); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("writes to a stalling reader never failed")
	}
	if elapsed := time.Since(start); elapsed > 10*WriteTimeout {
		t.Fatalf("stalled write took %v, want ~%v", elapsed, WriteTimeout)
	}
}

// TestMux2CapabilityNegotiation: a capability-bearing pool against a
// capability-bearing server negotiates MUX2 — both sides see the other's
// byte — while a zero-cap pool stays on MUX1 and reads zero peer caps.
func TestMux2CapabilityNegotiation(t *testing.T) {
	srv, cl := listenCounting(t, func(doc *xmltree.Node) (*xmltree.Node, error) {
		return doc, nil
	})
	srv.SetCaps(CapBlobRef)

	pool := NewLinkPool()
	defer pool.Close()
	pool.SetLocalCaps(CapBlobRef)

	caps, err := pool.PeerCaps(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if caps != CapBlobRef {
		t.Fatalf("peer caps = %#x, want CapBlobRef", caps)
	}
	// The negotiated link carries frames like any other.
	doc := xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "m2"})
	reply, _, err := pool.Call(srv.Addr(), func(e *xmltree.FrameEncoder) { e.Node(doc) })
	if err != nil {
		t.Fatal(err)
	}
	if reply.AttrDefault("id", "") != "m2" {
		t.Fatalf("reply = %s", reply)
	}
	if n := cl.accepts.Load(); n != 1 {
		t.Fatalf("negotiation + call used %d connections, want 1", n)
	}

	// A store-less client keeps the version-1 handshake and learns nothing.
	plain := NewLinkPool()
	defer plain.Close()
	caps, err = plain.PeerCaps(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if caps != 0 {
		t.Fatalf("MUX1 link reported peer caps %#x, want 0", caps)
	}
}

// legacyMux1Server accepts connections speaking ONLY the version-1
// protocol, closing on any other magic — the behavior of a pre-MUX2 build.
// It echoes correlated frames so the test can prove the link still works
// after the fallback.
func legacyMux1Server(t *testing.T) (addr string, accepts *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepts = &atomic.Int64{}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				magic := make([]byte, 4)
				if _, err := io.ReadFull(conn, magic); err != nil || string(magic) != linkMagic {
					return // old build: unknown magic, drop the connection
				}
				hdr := make([]byte, 12)
				for {
					if _, err := io.ReadFull(conn, hdr); err != nil {
						return
					}
					n := binary.BigEndian.Uint32(hdr[0:4])
					payload := make([]byte, n)
					if _, err := io.ReadFull(conn, payload); err != nil {
						return
					}
					if corr := binary.BigEndian.Uint64(hdr[4:12]); corr != 0 {
						if _, err := conn.Write(append(hdr, payload...)); err != nil {
							return
						}
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), accepts
}

// TestMux2LegacyFallback: a capability-bearing pool dialing a version-1
// peer auto-detects the rejected handshake, redials as MUX1 and carries
// traffic inline-only; the wasted probe dial happens once, not per
// reconnection.
func TestMux2LegacyFallback(t *testing.T) {
	addr, accepts := legacyMux1Server(t)
	pool := NewLinkPool()
	defer pool.Close()
	pool.SetLocalCaps(CapBlobRef)

	caps, err := pool.PeerCaps(addr)
	if err != nil {
		t.Fatal(err)
	}
	if caps != 0 {
		t.Fatalf("legacy peer advertised caps %#x, want 0", caps)
	}
	doc := xmltree.ElemAttrs("mqp", xmltree.Attr{Name: "id", Value: "legacy"})
	reply, _, err := pool.Call(addr, func(e *xmltree.FrameEncoder) { e.Node(doc) })
	if err != nil {
		t.Fatal(err)
	}
	if reply.AttrDefault("id", "") != "legacy" {
		t.Fatalf("reply = %s", reply)
	}
	if n := accepts.Load(); n != 2 {
		t.Fatalf("fallback used %d accepts, want 2 (failed MUX2 probe + MUX1 redial)", n)
	}

	// Drop the link and force a redial: the pool remembers the peer is
	// legacy and goes straight to MUX1.
	pool.mu.Lock()
	l := pool.links[addr]
	pool.mu.Unlock()
	pool.drop(l)
	// A round trip (not just a dial) so the server has provably accepted
	// the reconnection before the count is read.
	if _, _, err := pool.Call(addr, func(e *xmltree.FrameEncoder) { e.Node(doc) }); err != nil {
		t.Fatal(err)
	}
	if n := accepts.Load(); n != 3 {
		t.Fatalf("reconnection used %d total accepts, want 3 (no second probe)", n)
	}
}
