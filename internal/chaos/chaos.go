// Package chaos is the fault-injection differential harness: it generates
// seeded random deployments (topologies, catalogs, collections, query
// workloads) of the mutant-query-plan system, runs them on simnet's
// deterministic event-queue scheduler with injected faults — message drops,
// duplicates, reordering, transient partitions, peer crash/restart windows —
// and differentially checks every run against a centralized oracle
// (oracle.go) that evaluates each plan over the union of all data.
//
// Every scenario is a pure function of its seed: a failure anywhere replays
// exactly with `make chaos SEED=<seed>` (or `go run ./cmd/chaos -seed N`).
//
// The invariants each scenario enforces:
//
//  1. Oracle equality — every full result delivered to the client equals
//     the centralized oracle's answer for that plan, as a multiset of
//     canonical XML items, and every explicit partial result (the routing
//     layer exhausted all productive hops — internal/route) is a verified
//     sub-multiset of it. Faults may lose plans; they must never corrupt
//     answers.
//  2. Trail/hop consistency — every provenance trail verifies against the
//     scenario keyring, names only servers the plan was actually delivered
//     to, carries non-decreasing virtual times, and has no more processing
//     stops than the result took hops; the plan-carried visited-server
//     memory names only servers that also signed the trail (visited ⊆
//     trail).
//  3. No silently lost plans — every submitted plan either completes (full
//     or partial), or surfaces through a peer's StuckErrors()/a submit
//     error, or its loss is attributed to a recorded network fault (dropped
//     or lost message).
//  4. Race-clean frozen reads — the oracle evaluates concurrently with the
//     network pump while aliasing the same frozen collection items, so
//     `go test -race ./internal/chaos` stresses the freeze/COW ownership
//     rule: anything that keeps a received subtree must Freeze() it, and
//     frozen subtrees are read lock-free from many goroutines.
//  5. Fault-free liveness — with no faults injected, zero plans end up
//     stuck: visited-server routing memory turns every former livelock
//     (empty-area meta/index ping-pong, dual-seller decline bounces) into a
//     completed or partial result.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/blobstore"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/provenance"
	"repro/internal/route"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// Level selects the fault intensity of a scenario.
type Level int

// Fault levels. LevelMixed (the zero value) derives the intensity from the
// scenario seed, so a sweep covers the whole range.
const (
	LevelMixed Level = iota
	LevelNone
	LevelLight
	LevelHeavy
)

func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelLight:
		return "light"
	case LevelHeavy:
		return "heavy"
	default:
		return "mixed"
	}
}

// ParseLevel converts a level name; unknown names return LevelMixed.
func ParseLevel(s string) Level {
	switch s {
	case "none":
		return LevelNone
	case "light":
		return LevelLight
	case "heavy":
		return LevelHeavy
	default:
		return LevelMixed
	}
}

// Config parameterizes one scenario. Only Seed is required; the zero value
// of everything else picks seed-derived defaults.
type Config struct {
	Seed  int64
	Level Level
	// Peers > 0 switches to the large-world generator (large.go): that many
	// seller peers under layered per-state meta-indexes, checked by an
	// incremental oracle with sampled full verification. Zero keeps the
	// original small-world generator, byte-identical per seed.
	Peers int
	// Churn enables mid-run churn in large worlds: peer joins, seller
	// leaves (crash with no restart), crash/restart windows, and replica
	// promotion on the leavers.
	Churn bool
	// Zipf skews the large-world specialty and query distribution
	// (1.2–2.0 realistic); 0 derives it from the seed like small worlds do.
	Zipf float64
	// OracleSample is the fraction of large-world queries that get full
	// reference-oracle verification on top of the cheap incremental checks
	// every query gets; 0 defaults to 0.15, >= 1 verifies everything.
	OracleSample float64
	// Learn enables learned routing shortcuts (internal/route.Shortcuts) on
	// every peer: trails are mined for (area → server) edges, the learned
	// tier is consulted first when routing, and confirmed edges are absorbed
	// into peer catalogs. Off by default, so default sweeps exercise the
	// byte-identical non-learning path.
	Learn bool
	// Blobs gives every peer a content-addressed payload store
	// (internal/blobstore): collection installs and replica snapshots dedup
	// at rest, and repeated result freight ships by reference once the
	// receiver provably holds the fingerprint, with fetch-on-miss repair
	// under faults. Off by default, so default sweeps exercise the
	// byte-identical store-off path.
	Blobs bool
}

// Report is the outcome of one scenario. Violations empty means every
// invariant held.
type Report struct {
	Seed  int64
	Level Level
	Peers int
	Items int
	Plans int
	// Completed counts plans with at least one full result at the client;
	// Results counts deliveries (duplication can produce more than one).
	Completed int
	Results   int
	// Partial counts plans whose only deliveries were explicit partial
	// results (the routing layer exhausted every productive hop and
	// returned what was already reduced). Partials are oracle-checked as
	// sub-multisets of the full answer.
	Partial int
	// Stuck counts non-completed plans surfaced via StuckErrors or a
	// submit-time error; LostToFaults counts non-completed, non-stuck plans
	// whose carrier message appears in the scheduler's drop/loss trace.
	Stuck        int
	LostToFaults int
	// OracleChecked counts result-vs-oracle comparisons performed.
	OracleChecked int
	// SampledChecks counts large-world queries that additionally got full
	// reference-oracle verification (the OracleSample fraction).
	SampledChecks int
	// Joined, Left, Promoted and PromotionsRefused count large-world churn
	// events: peers that joined mid-run, sellers that left for good (crash
	// with no restart), replicas promoted to authoritative in their place,
	// and promotions refused because the replica's staleness bound was
	// already exhausted.
	Joined, Left, Promoted, PromotionsRefused int
	// Shortcuts aggregates the learned-routing tables of every peer at the
	// end of a Config.Learn scenario (all-zero with learning off).
	Shortcuts route.ShortcutStats
	// Blobs aggregates every peer's payload-store wire counters at the end
	// of a Config.Blobs scenario (all-zero with stores off). FetchFailures
	// feed the stuck/lost accounting, never silent loss.
	Blobs peer.BlobNetStats
	// BlobBytes and BlobLogicalBytes sum resident vs logical store bytes
	// across peers; logical/resident > 1 means dedup at rest happened.
	BlobBytes, BlobLogicalBytes int64
	// Events counts scheduler events pumped (deliveries plus control
	// events); zero for inline-built small worlds before PR 7's stats.
	Events int
	// OracleTime is the wall time the oracle goroutine spent computing
	// bounds and sampled reference checks — the budget the incremental
	// oracle must keep affordable at 10³–10⁴ peers (bench-chaos records
	// it per scenario). Wall time, so excluded from Summary.
	OracleTime  time.Duration
	Messages    int64
	DroppedMsgs int
	LostMsgs    int
	Violations  []string
	// StuckDetails holds the stuck-error messages recorded by all peers, for
	// replay diagnosis (cmd/chaos -v prints them).
	StuckDetails []string
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) violate(format string, args ...interface{}) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Summary renders a one-line digest for logs. The churn columns
// (joined/left/promoted/refused) make large-world replays diagnosable at a
// glance; small worlds print them as zeros.
func (r *Report) Summary() string {
	return fmt.Sprintf("seed=%d level=%s peers=%d plans=%d completed=%d partial=%d stuck=%d lost=%d joined=%d left=%d promoted=%d refused=%d msgs=%d dropped=%d violations=%d",
		r.Seed, r.Level, r.Peers, r.Plans, r.Completed, r.Partial, r.Stuck, r.LostToFaults,
		r.Joined, r.Left, r.Promoted, r.PromotionsRefused,
		r.Messages, r.DroppedMsgs, len(r.Violations))
}

// planCase is one generated query: the submitted plan and the pristine clone
// the oracle evaluates. shape and sampled are used by the large-world path
// only (shape selects which cheap invariants apply; sampled marks the
// queries that get full reference verification).
type planCase struct {
	id        string
	oracle    *algebra.Plan
	entry     string
	at        time.Duration
	submitErr error
	shape     int
	sampled   bool
}

// Run generates and executes one scenario and checks every invariant.
// The returned error covers harness failures (a bug in the generator or
// oracle); invariant violations land in the Report instead.
func Run(cfg Config) (*Report, error) {
	if cfg.Peers > 0 {
		return runLarge(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{Seed: cfg.Seed, Level: cfg.Level}

	// --- World -----------------------------------------------------------
	ns := workload.GarageSaleNamespace()
	net := simnet.New()
	// Legitimate routing in these topologies is a handful of hops; a tight
	// depth bound makes forwarding cycles (e.g. a plan bouncing between an
	// authoritative meta and an index that both lack the data) surface as
	// stuck errors quickly, instead of breeding hundreds of hops' worth of
	// duplicated traffic first.
	net.SetMaxDepth(40)

	nSellers := 3 + rng.Intn(6)
	itemsPer := 2 + rng.Intn(4)
	zipf := 1.2 + rng.Float64()*0.8
	layered := rng.Float64() < 0.5
	sellerStats := rng.Float64() < 0.5
	prune := sellerStats && rng.Float64() < 0.5
	pushSelect := rng.Float64() < 0.7

	sellers := workload.GarageSale(ns, workload.GarageSaleConfig{
		Seed: rng.Int63(), Sellers: nSellers, ItemsPerSeller: itemsPer, SpecialtyZipf: zipf,
	})

	learn := cfg.Learn
	blobs := cfg.Blobs
	keys := map[string][]byte{}
	peers := map[string]*peer.Peer{}
	addPeer := func(cfg peer.Config) (*peer.Peer, error) {
		cfg.Key = []byte(cfg.Addr)
		// Every chaos peer runs the prepared-plan cache so the differential
		// oracle continuously validates cache hits against live processing:
		// any divergence a cached step introduces (wrong payload, wrong
		// provenance, wrong route) trips an invariant. Peers stay
		// synchronous (Workers=0) — scheduled delivery owns determinism.
		cfg.PlanCacheSize = 32
		if learn {
			cfg.LearnShortcuts = true
			// Chaos keys are the peer addresses; mining verifies trails
			// against the same keyring the invariant checks use.
			cfg.Keyring = func(server string) []byte { return []byte(server) }
		}
		if blobs {
			cfg.Blobs = blobstore.New()
		}
		p, err := peer.New(cfg)
		if err != nil {
			return nil, err
		}
		keys[cfg.Addr] = cfg.Key
		peers[cfg.Addr] = p
		return p, nil
	}

	const metaAddr = "meta:9020"
	const clientAddr = "client:9020"
	if _, err := addPeer(peer.Config{Addr: metaAddr, Net: net, NS: ns, PushSelect: pushSelect,
		Area: ns.Everything(), Authoritative: true, PruneStats: prune}); err != nil {
		return nil, err
	}

	// One authoritative index server per state in layered deployments.
	indexes := map[string]string{} // state path -> index addr
	var indexAddrs []string
	if layered {
		for _, s := range sellers {
			st := s.City.Truncate(2).String()
			if _, ok := indexes[st]; ok {
				continue
			}
			addr := "idx-" + strings.ReplaceAll(st, "/", "-") + ":9020"
			area := namespace.NewArea(namespace.NewCell(s.City.Truncate(2), hierarchy.Top))
			idx, err := addPeer(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: pushSelect,
				Area: area, Authoritative: true, PruneStats: prune})
			if err != nil {
				return nil, err
			}
			if err := idx.RegisterWith(metaAddr, catalog.RoleIndex); err != nil {
				return nil, err
			}
			indexes[st] = addr
			indexAddrs = append(indexAddrs, addr)
		}
		sort.Strings(indexAddrs)
	}

	var oracleColls []Collection
	for i, s := range sellers {
		pcfg := peer.Config{Addr: s.Addr, Net: net, NS: ns, PushSelect: pushSelect, Area: s.Area}
		switch rng.Intn(3) {
		case 0:
			// Default: plans travel to the data (ForwardOnlyPolicy).
		case 1:
			pcfg.Policy = mqp.DefaultPolicy{}
		case 2:
			pcfg.Policy = mqp.DefaultPolicy{MaxReduceCard: 4}
		}
		if sellerStats {
			pcfg.StatsHistPath = "price"
			pcfg.StatsKeyPaths = []string{"category"}
		}
		sp, err := addPeer(pcfg)
		if err != nil {
			return nil, err
		}
		pathExp := fmt.Sprintf("/chaos[s=%d]", i)
		sp.AddCollection(peer.Collection{Name: "items", PathExp: pathExp, Area: s.Area, Items: s.Items})
		rep.Items += len(s.Items)
		up := metaAddr
		if layered {
			up = indexes[s.City.Truncate(2).String()]
		}
		if err := sp.RegisterWith(up, catalog.RoleBase); err != nil {
			return nil, err
		}
		// The collection items are frozen by AddCollection; the oracle
		// aliases exactly the documents the live network serves.
		oracleColls = append(oracleColls, Collection{PathExp: pathExp, Area: s.Area, Items: s.Items})
	}

	client, err := addPeer(peer.Config{Addr: clientAddr, Net: net, NS: ns})
	if err != nil {
		return nil, err
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: metaAddr, Role: catalog.RoleMetaIndex,
		Area: ns.Everything(), Authoritative: true,
	}); err != nil {
		return nil, err
	}
	rep.Peers = len(peers)

	oracle, err := NewOracle(ns, oracleColls)
	if err != nil {
		return nil, err
	}

	// --- Fault schedule --------------------------------------------------
	// The world is built inline (registrations deliver synchronously); only
	// query traffic runs under the scheduler and its faults.
	net.UseScheduler(rng.Int63())
	faults, nCrashes, wantPartition := levelFaults(cfg.Level, rng)
	net.SetFaults(faults)

	var faultable []string // every peer but the client
	for addr := range peers {
		if addr != clientAddr {
			faultable = append(faultable, addr)
		}
	}
	sort.Strings(faultable)
	const horizon = 800 * time.Millisecond
	for i := 0; i < nCrashes && len(faultable) > 0; i++ {
		addr := faultable[rng.Intn(len(faultable))]
		from := time.Duration(rng.Int63n(int64(horizon)))
		until := from + 50*time.Millisecond + time.Duration(rng.Int63n(int64(250*time.Millisecond)))
		if rng.Float64() < 0.2 {
			until = 0 // crash with no restart
		}
		net.ScheduleCrash(addr, from, until)
	}
	if wantPartition && len(faultable) > 1 {
		split := append([]string(nil), faultable...)
		rng.Shuffle(len(split), func(i, j int) { split[i], split[j] = split[j], split[i] })
		cut := 1 + rng.Intn(len(split)-1)
		from := time.Duration(rng.Int63n(int64(400 * time.Millisecond)))
		until := from + time.Duration(rng.Int63n(int64(300*time.Millisecond)))
		net.Partition(split[:cut], split[cut:], from, until)
	}

	// --- Workload --------------------------------------------------------
	nPlans := 2 + rng.Intn(5)
	cases := make([]*planCase, 0, nPlans)
	for i := 0; i < nPlans; i++ {
		area, maxPrice := genQuery(ns, sellers, rng, zipf)
		plan := genPlan(rng, fmt.Sprintf("chaos-%d-q%d", cfg.Seed, i), clientAddr, area, maxPrice, ns)
		if rng.Float64() < 0.5 {
			plan.RetainOriginal()
		}
		if rng.Float64() < 0.3 {
			mqp.SetPrefs(plan, mqp.Prefs{BudgetMS: 100 + rng.Intn(400), PreferCurrent: rng.Float64() < 0.5})
		}
		entry := metaAddr
		if layered && len(indexAddrs) > 0 && rng.Float64() < 0.4 {
			entry = indexAddrs[rng.Intn(len(indexAddrs))]
		}
		pc := &planCase{
			id:     plan.ID,
			oracle: plan.Clone(),
			entry:  entry,
			// Whole microseconds: virtual time is µs-granular on the wire
			// (provenance visit times), so finer submission offsets would
			// not survive a serialization round trip.
			at: time.Duration(rng.Int63n(500_000)) * time.Microsecond,
		}
		pc.submitErr = net.Send(&simnet.Message{
			From: clientAddr, To: entry, Kind: peer.KindMQP,
			Body: algebra.Marshal(plan), At: pc.at,
		})
		cases = append(cases, pc)
	}
	rep.Plans = len(cases)

	// --- Execute: oracle concurrent with the pump (invariant 4) ----------
	expected := make([]map[string]int, len(cases))
	oracleErrs := make([]error, len(cases))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, pc := range cases {
			items, err := oracle.Evaluate(pc.oracle)
			if err != nil {
				oracleErrs[i] = err
				continue
			}
			expected[i] = Multiset(items)
		}
	}()
	if _, err := net.Run(); err != nil {
		rep.violate("scheduler: %v", err)
	}
	wg.Wait()
	for _, err := range oracleErrs {
		if err != nil {
			return rep, err
		}
	}

	// --- Invariants ------------------------------------------------------
	checkInvariants(rep, net, peers, keys, client, cases, expected)
	collectShortcutStats(rep, peers)
	collectBlobStats(rep, peers)
	return rep, nil
}

// genQuery picks a query area and price ceiling. Most queries target a
// seller's cell (buyers look for what sellers sell); the rest are uniform,
// so provably-empty areas and authoritative empty bindings stay covered.
func genQuery(ns *namespace.Namespace, sellers []workload.Seller, rng *rand.Rand, zipf float64) (namespace.Area, int) {
	if rng.Float64() < 0.75 {
		s := sellers[rng.Intn(len(sellers))]
		loc := s.City
		if rng.Intn(3) == 0 {
			loc = loc.Parent()
		}
		return namespace.NewArea(namespace.NewCell(loc, s.Spec)), 10 + rng.Intn(150)
	}
	q := workload.Queries(ns, rng.Int63(), 1, zipf)[0]
	return q.Area, q.MaxPrice
}

// genPlan builds one of the harness's plan shapes over the area. Every
// shape has exact multiset semantics both centrally and distributed (TopN is
// deliberately absent: its answer is order-sensitive under ties).
func genPlan(rng *rand.Rand, id, target string, area namespace.Area, maxPrice int, ns *namespace.Namespace) *algebra.Plan {
	p, _ := genPlanShape(rng, id, target, area, maxPrice, ns)
	return p
}

// genPlanShape is genPlan returning the chosen shape index too; the
// large-world invariants use it to decide which cheap checks apply (shapes
// 0, 2 and 4 are item-preserving, so every result item must come from the
// installed union; 1 and 3 synthesize documents).
func genPlanShape(rng *rand.Rand, id, target string, area namespace.Area, maxPrice int, ns *namespace.Namespace) (*algebra.Plan, int) {
	urn := func() *algebra.Node { return algebra.URN(namespace.EncodeURN(area)) }
	pred := algebra.MustParsePredicate(fmt.Sprintf("price < %d", maxPrice))
	var body *algebra.Node
	shape := rng.Intn(5)
	switch shape {
	case 0:
		body = algebra.Select(pred, urn())
	case 1:
		body = algebra.Count(algebra.Select(pred, urn()))
	case 2:
		// Union of the area with a generalized copy of it.
		wide := ns.Generalize(area)
		body = algebra.Select(pred, algebra.Union(urn(), algebra.URN(namespace.EncodeURN(wide))))
	case 3:
		body = algebra.Project("hit", []string{"name", "price", "city"}, algebra.Select(pred, urn()))
	default:
		// Mid-price band: cheap items subtracted from the full selection.
		low := algebra.MustParsePredicate(fmt.Sprintf("price < %d", 1+maxPrice/2))
		body = algebra.Difference(algebra.Select(pred, urn()), algebra.Select(low, urn()))
	}
	return algebra.NewPlan(id, target, algebra.Display(body)), shape
}

// levelFaults maps a fault level to scheduler fault probabilities, a crash
// count, and whether to cut a partition.
func levelFaults(level Level, rng *rand.Rand) (simnet.Faults, int, bool) {
	switch level {
	case LevelNone:
		return simnet.Faults{}, 0, false
	case LevelLight:
		return simnet.Faults{Drop: 0.03, Duplicate: 0.02, Reorder: 0.2},
			rng.Intn(2), rng.Float64() < 0.15
	case LevelHeavy:
		return simnet.Faults{Drop: 0.12, Duplicate: 0.08, Reorder: 0.5},
			1 + rng.Intn(2), rng.Float64() < 0.4
	default: // LevelMixed: seed-derived intensity across the whole range.
		scale := rng.Float64()
		return simnet.Faults{
				Drop:      0.15 * scale * rng.Float64(),
				Duplicate: 0.10 * scale * rng.Float64(),
				Reorder:   0.6 * scale,
			},
			rng.Intn(3), rng.Float64() < 0.3
	}
}

// collectShortcutStats sums the learned-routing tables across peers into the
// report; all-zero when the scenario ran without Config.Learn.
func collectShortcutStats(rep *Report, peers map[string]*peer.Peer) {
	for _, addr := range sortedAddrs(peers) {
		s := peers[addr].Shortcuts()
		if s == nil {
			continue
		}
		st := s.Stats()
		rep.Shortcuts.Hits += st.Hits
		rep.Shortcuts.Misses += st.Misses
		rep.Shortcuts.Learned += st.Learned
		rep.Shortcuts.Expired += st.Expired
		rep.Shortcuts.Invalidated += st.Invalidated
		rep.Shortcuts.Entries += st.Entries
	}
}

// collectBlobStats sums the payload-store wire counters and residency
// across peers; all-zero when the scenario ran without Config.Blobs.
func collectBlobStats(rep *Report, peers map[string]*peer.Peer) {
	for _, addr := range sortedAddrs(peers) {
		p := peers[addr]
		st := p.BlobNetStats()
		rep.Blobs.ByRefSent += st.ByRefSent
		rep.Blobs.ByRefBytes += st.ByRefBytes
		rep.Blobs.RefsResolved += st.RefsResolved
		rep.Blobs.Fetches += st.Fetches
		rep.Blobs.FetchRetries += st.FetchRetries
		rep.Blobs.FetchFailures += st.FetchFailures
		rep.Blobs.FetchServed += st.FetchServed
		rep.Blobs.Taught += st.Taught
		rep.Blobs.Probes += st.Probes
		if s := p.BlobStore(); s != nil {
			ss := s.Stats()
			rep.BlobBytes += ss.Bytes
			rep.BlobLogicalBytes += ss.LogicalBytes
		}
	}
}

// sortedAddrs returns the peer map's keys in deterministic order.
func sortedAddrs(peers map[string]*peer.Peer) []string {
	out := make([]string, 0, len(peers))
	for a := range peers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// planIDOf extracts the plan id a simnet message carries, or "".
func planIDOf(m *simnet.Message) string {
	if m.Body == nil || m.Body.Name != "mqp" {
		return ""
	}
	return m.Body.AttrDefault("id", "")
}

// checkInvariants evaluates invariants 1–3 against the scenario outcome.
func checkInvariants(rep *Report, net *simnet.Network, peers map[string]*peer.Peer,
	keys map[string][]byte, client *peer.Peer, cases []*planCase, expected []map[string]int) {

	rep.Messages = net.Metrics().Messages
	trace := net.SchedTrace()
	rep.DroppedMsgs = len(trace.Dropped)
	rep.LostMsgs = len(trace.Lost)

	// Messages removed by faults, and deliveries made, by plan id.
	faultIDs := map[string]bool{}
	for _, m := range trace.Dropped {
		if id := planIDOf(m); id != "" {
			faultIDs[id] = true
		}
	}
	for _, m := range trace.Lost {
		if id := planIDOf(m); id != "" {
			faultIDs[id] = true
		}
	}
	deliveredTo := map[string]map[string]bool{} // plan id -> servers delivered to
	for _, m := range trace.Delivered {
		if id := planIDOf(m); id != "" {
			if deliveredTo[id] == nil {
				deliveredTo[id] = map[string]bool{}
			}
			deliveredTo[id][m.To] = true
		}
	}

	// Stuck errors across all peers, attributed by the quoted plan id.
	for _, addr := range sortedAddrs(peers) {
		for _, err := range peers[addr].StuckErrors() {
			rep.StuckDetails = append(rep.StuckDetails, err.Error())
		}
	}
	stuckFor := func(id string) bool {
		needle := fmt.Sprintf("%q", id)
		for _, d := range rep.StuckDetails {
			if strings.Contains(d, needle) {
				return true
			}
		}
		return false
	}

	results := map[string][]peer.Result{}
	for _, res := range client.Results() {
		results[res.Plan.ID] = append(results[res.Plan.ID], res)
		rep.Results++
	}
	known := map[string]bool{}
	for _, pc := range cases {
		known[pc.id] = true
	}
	for id := range results {
		if !known[id] {
			rep.violate("phantom result for never-submitted plan %q", id)
		}
	}

	keyring := func(server string) []byte { return keys[server] }
	for i, pc := range cases {
		rs := results[pc.id]
		full := 0
		for _, res := range rs {
			if !res.Partial {
				full++
			}
		}
		switch {
		case full > 0:
			rep.Completed++
		case len(rs) > 0:
			rep.Partial++
		case pc.submitErr != nil || stuckFor(pc.id):
			rep.Stuck++
			if rep.Level == LevelNone {
				// Invariant 5: a fault-free network must never strand a
				// plan — with visited-server routing memory, every plan
				// terminates as a completed or partial result.
				rep.violate("plan %q stuck in a fault-free run", pc.id)
			}
		case faultIDs[pc.id]:
			rep.LostToFaults++
		default:
			rep.violate("plan %q silently lost: no result, no stuck error, no recorded fault", pc.id)
		}

		for _, res := range rs {
			// Invariant 1: oracle equality — full results must equal the
			// oracle's answer; explicit partial results must be
			// sub-multisets of it.
			items, err := res.Plan.Results()
			if err != nil {
				rep.violate("plan %q: non-constant result: %v", pc.id, err)
				continue
			}
			rep.OracleChecked++
			if res.Partial {
				if ok, diff := MultisetSubset(Multiset(items), expected[i]); !ok {
					rep.violate("plan %q: partial result exceeds oracle: %s", pc.id, diff)
				}
			} else if ok, diff := MultisetEqual(Multiset(items), expected[i]); !ok {
				rep.violate("plan %q: result diverges from oracle: %s", pc.id, diff)
			}
			// Invariant 2: trail/hop consistency.
			trail, err := peer.QueryTrail(res)
			if err != nil {
				rep.violate("plan %q: bad provenance: %v", pc.id, err)
				continue
			}
			if idx, err := trail.Verify(keyring); err != nil {
				rep.violate("plan %q: trail visit %d fails verification: %v", pc.id, idx, err)
			}
			// The plan-carried routing memory must be consistent with the
			// signed trail: every server the <visited> section names also
			// signed a visit (visited ⊆ trail).
			if missing := provenance.UncoveredVisits(res.Plan, trail); len(missing) > 0 {
				rep.violate("plan %q: visited memory names %v, absent from the provenance trail",
					pc.id, missing)
			}
			stops := 0
			prevServer := ""
			var prevAt time.Duration
			for vi, v := range trail.Visits {
				if v.Server != prevServer {
					stops++
					prevServer = v.Server
				}
				if !deliveredTo[pc.id][v.Server] {
					rep.violate("plan %q: trail names %s, which never received the plan", pc.id, v.Server)
				}
				if v.At < prevAt {
					rep.violate("plan %q: trail time goes backwards at visit %d (%v < %v)", pc.id, vi, v.At, prevAt)
				}
				prevAt = v.At
			}
			if stops+1 > res.Hops {
				rep.violate("plan %q: %d processing stops need at least %d hops, result took %d",
					pc.id, stops, stops+1, res.Hops)
			}
		}
	}
	if rep.Completed+rep.Partial+rep.Stuck+rep.LostToFaults != rep.Plans {
		rep.violate("accounting: completed %d + partial %d + stuck %d + lost %d != plans %d",
			rep.Completed, rep.Partial, rep.Stuck, rep.LostToFaults, rep.Plans)
	}
}
