package chaos

import (
	"testing"

	"repro/internal/peer"
)

// Payload-store chaos coverage: the same seeded fault-injection scenarios
// with every peer running a content-addressed blobstore — collection dedup
// at rest, by-reference result freight, fetch-on-miss repair under drops,
// duplicates, reordering, partitions and crashes. The store may only ever
// change HOW payload bytes travel, never WHAT a plan answers.

// TestBlobsEnabledSweep: mixed-fault scenarios with stores on must violate
// nothing, and the sweep as a whole must actually exercise the reference
// path (a sweep where nothing ever ships by reference would mean the store
// is dead code under chaos and the test proves nothing).
func TestBlobsEnabledSweep(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 25
	}
	var byRef, fetches uint64
	for seed := int64(1); seed <= seeds; seed++ {
		rep, err := Run(Config{Seed: seed, Blobs: true})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d violated invariants with blob stores enabled:", seed)
			for _, v := range rep.Violations {
				t.Errorf("  %s", v)
			}
			return
		}
		if rep.BlobLogicalBytes < rep.BlobBytes {
			t.Fatalf("seed %d: logical bytes below resident bytes: %d < %d",
				seed, rep.BlobLogicalBytes, rep.BlobBytes)
		}
		byRef += rep.Blobs.ByRefSent
		fetches += rep.Blobs.Fetches
	}
	if byRef == 0 {
		t.Fatal("no scenario shipped a single payload by reference; the store wire path is not exercised")
	}
	t.Logf("sweep: byRef=%d fetches=%d", byRef, fetches)
}

// TestBlobsFaultFreeNeverStuck: by-reference freight must not strand plans
// in fault-free worlds — every reference a sender emits is resolvable, so
// the liveness gate (invariant 5) holds with stores active.
func TestBlobsFaultFreeNeverStuck(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rep, err := Run(Config{Seed: seed, Level: LevelNone, Blobs: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		if rep.Stuck != 0 || rep.LostToFaults != 0 {
			t.Fatalf("seed %d: blob stores stranded plans in a fault-free world: %s", seed, rep.Summary())
		}
		if rep.Blobs.FetchFailures != 0 {
			t.Fatalf("seed %d: fetch failed without faults: %+v", seed, rep.Blobs)
		}
	}
}

// TestBlobsOffIsByteIdentical: with Blobs unset, the scenario is
// byte-identical to the store-less build — same summary, zero blob state —
// pinning that the payload store is invisible unless opted into (the
// nil-store guarantee threaded through peer.Config.Blobs).
func TestBlobsOffIsByteIdentical(t *testing.T) {
	for _, seed := range []int64{3, 77, 501} {
		off, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if off.Blobs != (peer.BlobNetStats{}) || off.BlobBytes != 0 || off.BlobLogicalBytes != 0 {
			t.Fatalf("seed %d: store-off run accumulated blob state: %+v", seed, off.Blobs)
		}
		again, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if off.Summary() != again.Summary() {
			t.Fatalf("seed %d: store-off run not reproducible:\n%s\n%s",
				seed, off.Summary(), again.Summary())
		}
	}
}

// TestBlobsWithLearningLargeWorldChurn: stores and learned routing together
// in a churning 200-peer world — replica snapshots intern through the
// store, promotions redirect traffic, and crash-severed links force the
// fetch-on-miss path while shortcuts reroute around the dead source.
func TestBlobsWithLearningLargeWorldChurn(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	var byRef uint64
	for _, seed := range seeds {
		rep, err := Run(Config{Seed: seed, Peers: 200, Churn: true, Learn: true, Blobs: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d violated invariants (replay: go run ./cmd/chaos -seed %d -peers 200 -churn -learn -blobs):", seed, seed)
			for _, v := range rep.Violations {
				t.Errorf("  %s", v)
			}
			return
		}
		byRef += rep.Blobs.ByRefSent
	}
	if byRef == 0 {
		t.Fatal("no large-world scenario shipped a payload by reference")
	}
}
