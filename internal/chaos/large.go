// The large-world chaos generator: 10³–10⁴ peers under hierarchic areas,
// mid-run churn, replica promotion, and the incremental oracle
// (incremental.go). Config.Peers > 0 routes Run here; the small-world
// generator in chaos.go is untouched and byte-identical per seed.
//
// World shape: one meta-index server, one authoritative index server per
// state (layered over the scaled Location hierarchy), Config.Peers zipf-
// skewed sellers registered with their state's index, plus — under churn —
// joiner sellers that register mid-run, leaver sellers that crash for good,
// and replicas that promote themselves over their crashed sources.
//
// Everything the small worlds check is checked here, at the prices a large
// world can afford:
//
//   - Full results must satisfy lower ⊆ result ⊆ upper from the incremental
//     oracle (equality when the world has no joiners); partials ⊆ upper.
//   - Item-preserving shapes get the union-membership fabrication check.
//   - A seeded OracleSample fraction of queries is re-verified against the
//     processor-based reference Oracle built over just the relevant
//     collections — the differential check of the incremental oracle itself.
//   - Trail/hop consistency, no-plan-vanishes and the churn accounting ride
//     the scheduler's compact trace (simnet.SetTraceKey), which keeps
//     per-message state O(record), not O(body).
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/blobstore"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/provenance"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// largeHorizon bounds the virtual-time window scenario events land in.
const largeHorizon = 800 * time.Millisecond

// leaver is one seller scheduled to crash with no restart, and the replica
// (if any) that will try to promote itself in its place.
type leaver struct {
	addr      string
	pathExp   string
	idxAddr   string
	replica   *peer.Peer
	leaveAt   time.Duration
	promoteAt time.Duration
}

// joiner is one pre-generated seller that registers mid-run.
type joiner struct {
	p       *peer.Peer
	idxAddr string
	joinAt  time.Duration
}

func runLarge(cfg Config) (*Report, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{Seed: cfg.Seed, Level: cfg.Level}

	// --- World -----------------------------------------------------------
	nStates := cfg.Peers / 50
	if nStates < 4 {
		nStates = 4
	}
	if nStates > 64 {
		nStates = 64
	}
	ns := workload.ScaledNamespace(nStates, 8, 8, 6)
	net := simnet.New()
	net.SetMaxDepth(40)

	zipf := cfg.Zipf
	if zipf <= 1 {
		zipf = 1.2 + rng.Float64()*0.8
	}
	sample := cfg.OracleSample
	if sample <= 0 {
		sample = 0.15
	}
	pushSelect := rng.Float64() < 0.7

	sellers := workload.GarageSale(ns, workload.GarageSaleConfig{
		Seed: rng.Int63(), Sellers: cfg.Peers, ItemsPerSeller: 2 + rng.Intn(3), SpecialtyZipf: zipf,
	})

	keys := map[string][]byte{}
	peers := map[string]*peer.Peer{}
	addPeer := func(pcfg peer.Config) (*peer.Peer, error) {
		pcfg.Key = []byte(pcfg.Addr)
		pcfg.PlanCacheSize = 32
		if cfg.Learn {
			pcfg.LearnShortcuts = true
			pcfg.Keyring = func(server string) []byte { return []byte(server) }
		}
		if cfg.Blobs {
			pcfg.Blobs = blobstore.New()
		}
		p, err := peer.New(pcfg)
		if err != nil {
			return nil, err
		}
		keys[pcfg.Addr] = pcfg.Key
		peers[pcfg.Addr] = p
		return p, nil
	}

	const metaAddr = "meta:9020"
	const clientAddr = "client:9020"
	meta, err := addPeer(peer.Config{Addr: metaAddr, Net: net, NS: ns, PushSelect: pushSelect,
		Area: ns.Everything(), Authoritative: true})
	if err != nil {
		return nil, err
	}

	// One authoritative index per state, every state — joiners may land in
	// states no initial seller picked. World build registers directly into
	// catalogs (the same records RegisterWith would push) instead of
	// through the wire: setup is driver phase, and a 10³-peer world must
	// not cost 10³ codec round trips before the scenario even starts.
	// Query traffic, mid-run joins and promotions still cross the full
	// codec.
	indexes := map[string]string{}      // state path -> index addr
	idxPeers := map[string]*peer.Peer{} // index addr -> peer
	states, err := ns.Dimensions()[0].Children(hierarchy.Top)
	if err != nil {
		return nil, err
	}
	var indexAddrs []string
	for _, st := range states {
		addr := "idx-" + strings.ReplaceAll(st.String(), "/", "-") + ":9020"
		area := namespace.NewArea(namespace.NewCell(st, hierarchy.Top))
		idx, err := addPeer(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: pushSelect,
			Area: area, Authoritative: true})
		if err != nil {
			return nil, err
		}
		if err := meta.Catalog().Register(idx.Registration(catalog.RoleIndex)); err != nil {
			return nil, err
		}
		if err := idx.Catalog().Register(catalog.Registration{
			Addr: metaAddr, Role: catalog.RoleIndex, Area: ns.Everything(),
		}); err != nil {
			return nil, err
		}
		indexes[st.String()] = addr
		idxPeers[addr] = idx
		indexAddrs = append(indexAddrs, addr)
	}
	sort.Strings(indexAddrs)

	inc := NewIncOracle(ns)
	sellerPeers := make([]*peer.Peer, len(sellers))
	sellerPaths := make([]string, len(sellers))
	for i, s := range sellers {
		pcfg := peer.Config{Addr: s.Addr, Net: net, NS: ns, PushSelect: pushSelect, Area: s.Area}
		switch rng.Intn(3) {
		case 0:
			// Default: plans travel to the data (ForwardOnlyPolicy).
		case 1:
			pcfg.Policy = mqp.DefaultPolicy{}
		case 2:
			pcfg.Policy = mqp.DefaultPolicy{MaxReduceCard: 4}
		}
		sp, err := addPeer(pcfg)
		if err != nil {
			return nil, err
		}
		pathExp := fmt.Sprintf("/chaos[s=%d]", i)
		sp.AddCollection(peer.Collection{Name: "items", PathExp: pathExp, Area: s.Area, Items: s.Items})
		rep.Items += len(s.Items)
		idxAddr := indexes[s.City.Truncate(1).String()]
		if err := idxPeers[idxAddr].Catalog().Register(sp.Registration(catalog.RoleBase)); err != nil {
			return nil, err
		}
		if err := sp.Catalog().Register(catalog.Registration{
			Addr: idxAddr, Role: catalog.RoleIndex, Area: ns.Everything(),
		}); err != nil {
			return nil, err
		}
		if err := inc.Install(pathExp, s.Area, s.Items, false); err != nil {
			return nil, err
		}
		sellerPeers[i] = sp
		sellerPaths[i] = pathExp
	}

	client, err := addPeer(peer.Config{Addr: clientAddr, Net: net, NS: ns})
	if err != nil {
		return nil, err
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: metaAddr, Role: catalog.RoleMetaIndex,
		Area: ns.Everything(), Authoritative: true,
	}); err != nil {
		return nil, err
	}

	// --- Churn cast (chosen and built inline, executed under the pump) ---
	var leavers []leaver
	var joiners []joiner
	var joinSellers []workload.Seller
	if cfg.Churn {
		nChurn := cfg.Peers / 100
		if nChurn < 1 {
			nChurn = 1
		}
		// Leavers: distinct sellers that crash for good mid-run. ~70% leave
		// a replica behind, fetched now (the source is still up) with a
		// seed-chosen staleness bound; a quarter of those carry a zero
		// bound, so their promotion MUST be refused (the snapshot is
		// already older than "current" by promotion time).
		taken := map[int]bool{}
		for len(leavers) < nChurn && len(taken) < len(sellers) {
			i := rng.Intn(len(sellers))
			if taken[i] {
				continue
			}
			taken[i] = true
			lv := leaver{
				addr:    sellers[i].Addr,
				pathExp: sellerPaths[i],
				idxAddr: indexes[sellers[i].City.Truncate(1).String()],
			}
			lv.leaveAt = 100*time.Millisecond + time.Duration(rng.Int63n(400_000))*time.Microsecond
			lv.promoteAt = lv.leaveAt + 20*time.Millisecond + time.Duration(rng.Int63n(80_000))*time.Microsecond
			if rng.Float64() < 0.7 {
				bound := 1 + rng.Intn(60)
				if rng.Float64() < 0.25 {
					bound = 0
				}
				rp, err := addPeer(peer.Config{Addr: "rep-" + sellers[i].Addr, Net: net, NS: ns,
					PushSelect: pushSelect, Area: sellers[i].Area})
				if err != nil {
					return nil, err
				}
				if err := rp.ReplicateFrom(sellers[i].Addr, lv.pathExp,
					peer.Collection{Name: "items", PathExp: lv.pathExp, Area: sellers[i].Area}, bound); err != nil {
					return nil, fmt.Errorf("chaos: replica fetch from %s: %w", sellers[i].Addr, err)
				}
				lv.replica = rp
			}
			leavers = append(leavers, lv)
		}
		// Joiners: pre-generated sellers whose peers exist (unknown to any
		// catalog) and whose registration happens mid-run through the wire.
		// Their collections are installed in the oracle now, as joiners —
		// the oracle's state must be immutable once the pump starts.
		joinSellers = workload.GarageSale(ns, workload.GarageSaleConfig{
			Seed: rng.Int63(), Sellers: nChurn, ItemsPerSeller: 2 + rng.Intn(3), SpecialtyZipf: zipf,
		})
		for j := range joinSellers {
			joinSellers[j].Addr = fmt.Sprintf("joiner%03d:9020", j)
			s := joinSellers[j]
			jp, err := addPeer(peer.Config{Addr: s.Addr, Net: net, NS: ns, PushSelect: pushSelect, Area: s.Area})
			if err != nil {
				return nil, err
			}
			pathExp := fmt.Sprintf("/chaos[j=%d]", j)
			jp.AddCollection(peer.Collection{Name: "items", PathExp: pathExp, Area: s.Area, Items: s.Items})
			rep.Items += len(s.Items)
			if err := inc.Install(pathExp, s.Area, s.Items, true); err != nil {
				return nil, err
			}
			joiners = append(joiners, joiner{
				p:       jp,
				idxAddr: indexes[s.City.Truncate(1).String()],
				joinAt:  100*time.Millisecond + time.Duration(rng.Int63n(500_000))*time.Microsecond,
			})
		}
	}
	rep.Peers = len(peers)

	// --- Fault schedule and churn events ---------------------------------
	net.UseScheduler(rng.Int63())
	net.SetTraceKey(planIDOf)
	faults, nCrashes, wantPartition := levelFaults(cfg.Level, rng)
	net.SetFaults(faults)

	var faultable []string // every peer but the client
	for addr := range peers {
		if addr != clientAddr {
			faultable = append(faultable, addr)
		}
	}
	sort.Strings(faultable)
	if cfg.Churn {
		// Crash/restart windows scale with the world: transient outages the
		// routing layer must ride out, on top of the level's own crashes.
		nCrashes += cfg.Peers / 200
	}
	for i := 0; i < nCrashes && len(faultable) > 0; i++ {
		addr := faultable[rng.Intn(len(faultable))]
		from := time.Duration(rng.Int63n(int64(largeHorizon)))
		until := from + 50*time.Millisecond + time.Duration(rng.Int63n(int64(250*time.Millisecond)))
		net.ScheduleCrash(addr, from, until)
	}
	if wantPartition && len(faultable) > 1 {
		split := append([]string(nil), faultable...)
		rng.Shuffle(len(split), func(i, j int) { split[i], split[j] = split[j], split[i] })
		cut := 1 + rng.Intn(len(split)-1)
		from := time.Duration(rng.Int63n(int64(400 * time.Millisecond)))
		until := from + time.Duration(rng.Int63n(int64(300*time.Millisecond)))
		net.Partition(split[:cut], split[cut:], from, until)
	}
	for _, lv := range leavers {
		net.ScheduleCrash(lv.addr, lv.leaveAt, 0) // no restart: a leave
		rep.Left++
		if lv.replica != nil {
			lv := lv
			net.ScheduleFunc(lv.promoteAt, func() {
				err := lv.replica.Promote(lv.pathExp, lv.addr, lv.idxAddr, lv.promoteAt)
				switch {
				case err == nil:
					rep.Promoted++
				case errors.Is(err, peer.ErrStaleReplica):
					rep.PromotionsRefused++
				default:
					// The promotion itself failed (e.g. the index is inside
					// a crash window): the replica never became
					// authoritative, which the bounds tolerate.
					rep.PromotionsRefused++
				}
			})
		}
	}
	for _, jn := range joiners {
		jn := jn
		net.ScheduleFunc(jn.joinAt, func() {
			if err := jn.p.RegisterWithAt(jn.idxAddr, catalog.RoleBase, jn.joinAt); err == nil {
				rep.Joined++
			}
		})
	}

	// --- Workload --------------------------------------------------------
	nPlans := 8 + rng.Intn(5) + cfg.Peers/100
	if nPlans > 40 {
		nPlans = 40
	}
	querySellers := append(append([]workload.Seller(nil), sellers...), joinSellers...)
	cases := make([]*planCase, 0, nPlans)
	for i := 0; i < nPlans; i++ {
		area, maxPrice := genQuery(ns, querySellers, rng, zipf)
		plan, shape := genPlanShape(rng, fmt.Sprintf("chaos-%d-q%d", cfg.Seed, i), clientAddr, area, maxPrice, ns)
		if rng.Float64() < 0.5 {
			plan.RetainOriginal()
		}
		entry := metaAddr
		if rng.Float64() < 0.4 {
			entry = indexAddrs[rng.Intn(len(indexAddrs))]
		}
		pc := &planCase{
			id:      plan.ID,
			oracle:  plan.Clone(),
			entry:   entry,
			shape:   shape,
			sampled: rng.Float64() < sample,
			// Whole microseconds: virtual time is µs-granular on the wire.
			at: time.Duration(rng.Int63n(600_000)) * time.Microsecond,
		}
		pc.submitErr = net.Send(&simnet.Message{
			From: clientAddr, To: entry, Kind: peer.KindMQP,
			Body: algebra.Marshal(plan), At: pc.at,
		})
		cases = append(cases, pc)
	}
	rep.Plans = len(cases)

	// --- Execute: oracle concurrent with the pump (invariant 4) ----------
	lowers := make([]map[string]int, len(cases))
	uppers := make([]map[string]int, len(cases))
	oracleErrs := make([]error, len(cases))
	sampleViols := make([]string, len(cases))
	var oracleTime time.Duration
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		began := time.Now()
		defer func() { oracleTime = time.Since(began) }()
		for i, pc := range cases {
			lo, up, err := inc.EvalBounds(pc.oracle)
			if err != nil {
				oracleErrs[i] = err
				continue
			}
			lowers[i], uppers[i] = lo, up
			if !pc.sampled {
				continue
			}
			// Sampled differential check: the processor-based reference
			// over just the relevant collections must agree with the
			// incremental oracle on both bounds.
			sampleViols[i], oracleErrs[i] = crossCheck(ns, inc, pc, lo, up)
		}
	}()
	stats, err := net.Run()
	if err != nil {
		rep.violate("scheduler: %v", err)
	}
	wg.Wait()
	rep.Events = stats.Events
	rep.OracleTime = oracleTime
	for _, err := range oracleErrs {
		if err != nil {
			return rep, err
		}
	}
	for i, v := range sampleViols {
		if cases[i].sampled {
			rep.SampledChecks++
		}
		if v != "" {
			rep.violate("%s", v)
		}
	}

	// --- Invariants ------------------------------------------------------
	checkInvariantsLarge(rep, net, peers, keys, client, cases, lowers, uppers, inc)
	collectShortcutStats(rep, peers)
	collectBlobStats(rep, peers)
	return rep, nil
}

// crossCheck verifies the incremental oracle's bounds for one sampled case
// against the processor-based reference Oracle built over the relevant
// collections only. It returns a violation string (empty when the oracles
// agree) or a harness error.
func crossCheck(ns *namespace.Namespace, inc *IncOracle, pc *planCase, lo, up map[string]int) (string, error) {
	initial, all, err := inc.Relevant(pc.oracle)
	if err != nil {
		return "", err
	}
	refUp, err := evalReference(ns, all, pc.oracle)
	if err != nil {
		return "", err
	}
	if ok, diff := MultisetEqual(refUp, up); !ok {
		return fmt.Sprintf("plan %q: incremental oracle upper bound diverges from reference: %s", pc.id, diff), nil
	}
	if len(initial) == len(all) {
		// No joiners among the relevant collections: one reference run
		// covers both bounds.
		if ok, diff := MultisetEqual(refUp, lo); !ok {
			return fmt.Sprintf("plan %q: incremental oracle lower bound diverges from reference: %s", pc.id, diff), nil
		}
		return "", nil
	}
	refLo, err := evalReference(ns, initial, pc.oracle)
	if err != nil {
		return "", err
	}
	if ok, diff := MultisetEqual(refLo, lo); !ok {
		return fmt.Sprintf("plan %q: incremental oracle lower bound diverges from reference: %s", pc.id, diff), nil
	}
	return "", nil
}

// countOf extracts the scalar from a count-shape answer multiset: exactly
// one <count>N</count> document.
func countOf(ms map[string]int) (int, bool) {
	if len(ms) != 1 {
		return 0, false
	}
	for k, mult := range ms {
		var n int
		if mult == 1 {
			if _, err := fmt.Sscanf(k, "<count>%d</count>", &n); err == nil {
				return n, true
			}
		}
	}
	return 0, false
}

// evalReference runs one plan through a processor-based Oracle over the
// given collections and returns the answer multiset.
func evalReference(ns *namespace.Namespace, colls []Collection, plan *algebra.Plan) (map[string]int, error) {
	ref, err := NewOracle(ns, colls)
	if err != nil {
		return nil, err
	}
	items, err := ref.Evaluate(plan)
	if err != nil {
		return nil, err
	}
	return Multiset(items), nil
}

// checkInvariantsLarge is checkInvariants for the large-world path: the
// oracle-equality check becomes the bounds check (plus union membership for
// item-preserving shapes), and fault attribution reads the compact trace.
func checkInvariantsLarge(rep *Report, net *simnet.Network, peers map[string]*peer.Peer,
	keys map[string][]byte, client *peer.Peer, cases []*planCase,
	lowers, uppers []map[string]int, inc *IncOracle) {

	rep.Messages = net.Metrics().Messages
	trace := net.CompactSchedTrace()
	rep.DroppedMsgs = len(trace.Dropped)
	rep.LostMsgs = len(trace.Lost)

	faultIDs := map[string]bool{}
	for _, m := range trace.Dropped {
		if m.Key != "" {
			faultIDs[m.Key] = true
		}
	}
	for _, m := range trace.Lost {
		if m.Key != "" {
			faultIDs[m.Key] = true
		}
	}
	deliveredTo := map[string]map[string]bool{} // plan id -> servers delivered to
	for _, m := range trace.Delivered {
		if m.Key != "" {
			if deliveredTo[m.Key] == nil {
				deliveredTo[m.Key] = map[string]bool{}
			}
			deliveredTo[m.Key][m.To] = true
		}
	}

	for _, addr := range sortedAddrs(peers) {
		for _, err := range peers[addr].StuckErrors() {
			rep.StuckDetails = append(rep.StuckDetails, err.Error())
		}
	}
	stuckFor := func(id string) bool {
		needle := fmt.Sprintf("%q", id)
		for _, d := range rep.StuckDetails {
			if strings.Contains(d, needle) {
				return true
			}
		}
		return false
	}

	results := map[string][]peer.Result{}
	for _, res := range client.Results() {
		results[res.Plan.ID] = append(results[res.Plan.ID], res)
		rep.Results++
	}
	known := map[string]bool{}
	for _, pc := range cases {
		known[pc.id] = true
	}
	for id := range results {
		if !known[id] {
			rep.violate("phantom result for never-submitted plan %q", id)
		}
	}

	keyring := func(server string) []byte { return keys[server] }
	for i, pc := range cases {
		rs := results[pc.id]
		full := 0
		for _, res := range rs {
			if !res.Partial {
				full++
			}
		}
		switch {
		case full > 0:
			rep.Completed++
		case len(rs) > 0:
			rep.Partial++
		case pc.submitErr != nil || stuckFor(pc.id):
			rep.Stuck++
			if rep.Level == LevelNone && rep.Left == 0 && rep.PromotionsRefused == 0 {
				// Invariant 5 carries over: fault-free and churn-free runs
				// must never strand a plan. Leaves and refused promotions
				// legitimately strand plans over the departed data.
				rep.violate("plan %q stuck in a fault-free run", pc.id)
			}
		case faultIDs[pc.id]:
			rep.LostToFaults++
		default:
			rep.violate("plan %q silently lost: no result, no stuck error, no recorded fault", pc.id)
		}

		itemPreserving := pc.shape == 0 || pc.shape == 2 || pc.shape == 4
		for _, res := range rs {
			// Invariant 1 at scale: full results inside [lower, upper] (an
			// exact equality when the world has no joiners), partials ⊆
			// upper, and — for item-preserving shapes — nothing fabricated.
			items, err := res.Plan.Results()
			if err != nil {
				rep.violate("plan %q: non-constant result: %v", pc.id, err)
				continue
			}
			rep.OracleChecked++
			got := Multiset(items)
			switch {
			case pc.shape == 1:
				// Count answers are scalars, not monotone multisets: a query
				// racing a join may legitimately count any world between the
				// bounds, so <count>6</count> can match neither bound
				// document. Range-check the value instead.
				n, ok := countOf(got)
				lo, okLo := countOf(lowers[i])
				hi, okHi := countOf(uppers[i])
				switch {
				case res.Partial && len(got) == 0:
					// Nothing was reduced before the routing layer gave up —
					// an empty partial, vacuously within bounds.
				case !ok || !okLo || !okHi:
					rep.violate("plan %q: count plan produced a non-count answer", pc.id)
				case res.Partial:
					if n > hi {
						rep.violate("plan %q: partial count %d exceeds oracle upper bound %d", pc.id, n, hi)
					}
				case n < lo || n > hi:
					rep.violate("plan %q: count %d outside oracle bounds [%d, %d]", pc.id, n, lo, hi)
				}
			case res.Partial:
				if ok, diff := MultisetSubset(got, uppers[i]); !ok {
					rep.violate("plan %q: partial result exceeds oracle upper bound: %s", pc.id, diff)
				}
			default:
				if ok, diff := MultisetSubset(lowers[i], got); !ok {
					rep.violate("plan %q: result misses oracle lower bound: %s", pc.id, diff)
				}
				if ok, diff := MultisetSubset(got, uppers[i]); !ok {
					rep.violate("plan %q: result exceeds oracle upper bound: %s", pc.id, diff)
				}
			}
			if itemPreserving {
				if ok, diff := inc.ContainsAll(got); !ok {
					rep.violate("plan %q: %s", pc.id, diff)
				}
			}
			// Invariant 2: trail/hop consistency, unchanged from small
			// worlds.
			trail, err := peer.QueryTrail(res)
			if err != nil {
				rep.violate("plan %q: bad provenance: %v", pc.id, err)
				continue
			}
			if idx, err := trail.Verify(keyring); err != nil {
				rep.violate("plan %q: trail visit %d fails verification: %v", pc.id, idx, err)
			}
			if missing := provenance.UncoveredVisits(res.Plan, trail); len(missing) > 0 {
				rep.violate("plan %q: visited memory names %v, absent from the provenance trail",
					pc.id, missing)
			}
			stops := 0
			prevServer := ""
			var prevAt time.Duration
			for vi, v := range trail.Visits {
				if v.Server != prevServer {
					stops++
					prevServer = v.Server
				}
				if !deliveredTo[pc.id][v.Server] {
					rep.violate("plan %q: trail names %s, which never received the plan", pc.id, v.Server)
				}
				if v.At < prevAt {
					rep.violate("plan %q: trail time goes backwards at visit %d (%v < %v)", pc.id, vi, v.At, prevAt)
				}
				prevAt = v.At
			}
			if stops+1 > res.Hops {
				rep.violate("plan %q: %d processing stops need at least %d hops, result took %d",
					pc.id, stops, stops+1, res.Hops)
			}
		}
	}
	if rep.Completed+rep.Partial+rep.Stuck+rep.LostToFaults != rep.Plans {
		rep.violate("accounting: completed %d + partial %d + stuck %d + lost %d != plans %d",
			rep.Completed, rep.Partial, rep.Stuck, rep.LostToFaults, rep.Plans)
	}
}
