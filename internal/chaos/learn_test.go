package chaos

import (
	"testing"

	"repro/internal/route"
)

// Learned-routing chaos coverage: the same seeded fault-injection scenarios,
// with every peer mining shortcuts from verified trails and routing through
// the learned tier first. The oracle invariants must hold bit-for-bit as
// hard as they do without learning — a shortcut may only ever change WHERE a
// plan travels, never WHAT it answers.

// TestLearningEnabledSweep: mixed-fault scenarios with learning on must
// violate nothing, and the sweep as a whole must actually learn (a sweep
// where no table ever gains an edge would mean the learned tier is dead
// code under chaos and the test proves nothing).
func TestLearningEnabledSweep(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 25
	}
	var learned uint64
	for seed := int64(1); seed <= seeds; seed++ {
		rep, err := Run(Config{Seed: seed, Learn: true})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d violated invariants with learning enabled:", seed)
			for _, v := range rep.Violations {
				t.Errorf("  %s", v)
			}
			return
		}
		learned += rep.Shortcuts.Learned
	}
	if learned == 0 {
		t.Fatal("no scenario learned a single shortcut; the learned tier is not exercised")
	}
}

// TestLearningFaultFreeNeverStuck: learning must not reintroduce livelocks
// or strand plans in fault-free worlds — the liveness gate (invariant 5)
// holds with the learned tier active.
func TestLearningFaultFreeNeverStuck(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rep, err := Run(Config{Seed: seed, Level: LevelNone, Learn: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		if rep.Stuck != 0 || rep.LostToFaults != 0 {
			t.Fatalf("seed %d: learning stranded plans in a fault-free world: %s", seed, rep.Summary())
		}
	}
}

// TestLearningOffIsByteIdentical: with Learn unset, the scenario is
// byte-identical to the non-learning build — same summary, zero shortcut
// state — pinning that the learning machinery is invisible unless opted
// into (the nil-table guarantee in route.Select and mqp.Config.Shortcuts).
func TestLearningOffIsByteIdentical(t *testing.T) {
	for _, seed := range []int64{3, 77, 501} {
		off, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if off.Shortcuts != (route.ShortcutStats{}) {
			t.Fatalf("seed %d: learning-off run accumulated shortcut state: %+v", seed, off.Shortcuts)
		}
		again, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if off.Summary() != again.Summary() {
			t.Fatalf("seed %d: non-learning run not reproducible:\n%s\n%s",
				seed, off.Summary(), again.Summary())
		}
	}
}

// TestLearningUnderLargeWorldChurn: the shortcut-staleness scenario — a
// churning 200-peer world where sellers crash-leave and replicas promote
// with Supersedes — must hold every invariant with learning enabled. This
// is where stale shortcuts would misroute if expiry/invalidation failed:
// promotion invalidates edges to the dead source at every learning peer
// that hears the supersede.
func TestLearningUnderLargeWorldChurn(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	promoted := 0
	for _, seed := range seeds {
		rep, err := Run(Config{Seed: seed, Peers: 200, Churn: true, Learn: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d violated invariants (replay: go run ./cmd/chaos -seed %d -peers 200 -churn -learn):", seed, seed)
			for _, v := range rep.Violations {
				t.Errorf("  %s", v)
			}
			return
		}
		promoted += rep.Promoted
	}
	if promoted == 0 {
		t.Fatal("no churn scenario promoted a replica; the supersede-invalidation path was never exercised")
	}
}
