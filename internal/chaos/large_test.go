package chaos

import (
	"fmt"
	"syscall"
	"testing"
	"time"
)

// largeSweepSize returns the large-world scenario budget: the acceptance bar
// is 50 seeded 1000-peer churn scenarios, trimmed under -short for CI.
func largeSweepSize() int {
	if testing.Short() {
		return 16
	}
	return 50
}

// TestLargeWorldSweep is the PR 7 acceptance bar: 1000-peer, churn-enabled,
// zipf-loaded scenarios, every one holding every invariant at 0 violations,
// with every lost plan attributed (invariant 3 is part of the violation
// check). Shards run in parallel, so -race stresses the incremental oracle's
// lock-free frozen reads against the pumps.
func TestLargeWorldSweep(t *testing.T) {
	n := largeSweepSize()
	const shards = 8
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for seed := int64(s + 1); seed <= int64(n); seed += shards {
				rep, err := Run(Config{Seed: seed, Peers: 1000, Churn: true})
				if err != nil {
					t.Fatalf("seed %d: harness error: %v", seed, err)
				}
				if rep.Failed() {
					t.Errorf("seed %d violated invariants (replay: go run ./cmd/chaos -seed %d -peers 1000 -churn):", seed, seed)
					for _, v := range rep.Violations {
						t.Errorf("  %s", v)
					}
					return
				}
				if rep.Peers < 1000 {
					t.Fatalf("seed %d: world has %d peers, wanted >= 1000", seed, rep.Peers)
				}
			}
		})
	}
}

// TestLargeWorldDeterministic: a large world — churn schedule, promotions,
// zipf workload, outcome — is as much a pure function of its seed as a small
// one, which is what makes churn failures replayable.
func TestLargeWorldDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 42, 977} {
		a, err := Run(Config{Seed: seed, Peers: 1000, Churn: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Config{Seed: seed, Peers: 1000, Churn: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Summary() != b.Summary() {
			t.Fatalf("seed %d not deterministic:\n%s\n%s", seed, a.Summary(), b.Summary())
		}
	}
}

// TestLargeWorldChurnAccounting: across a handful of seeds the churn
// machinery must actually fire — joins, leaves, successful promotions AND
// bound-exhausted refusals all observed — or the robustness claims test
// nothing.
func TestLargeWorldChurnAccounting(t *testing.T) {
	var joined, left, promoted, refused int
	for seed := int64(1); seed <= 10; seed++ {
		rep, err := Run(Config{Seed: seed, Peers: 500, Churn: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		if rep.Left != rep.Promoted+rep.PromotionsRefused && rep.Left < rep.Promoted+rep.PromotionsRefused {
			t.Fatalf("seed %d: more promotion outcomes (%d+%d) than leavers (%d)",
				seed, rep.Promoted, rep.PromotionsRefused, rep.Left)
		}
		joined += rep.Joined
		left += rep.Left
		promoted += rep.Promoted
		refused += rep.PromotionsRefused
	}
	if joined == 0 || left == 0 || promoted == 0 || refused == 0 {
		t.Fatalf("churn machinery partly dead: joined=%d left=%d promoted=%d refused=%d",
			joined, left, promoted, refused)
	}
}

// TestLargeWorldWithoutChurn: the large generator with churn off is the
// pure scale test — no joiners means the oracle bounds collapse to strict
// equality, and a fault-free run must strand nothing (invariant 5 at 10³).
func TestLargeWorldWithoutChurn(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rep, err := Run(Config{Seed: seed, Peers: 1000, Level: LevelNone})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		if rep.Joined+rep.Left+rep.Promoted+rep.PromotionsRefused != 0 {
			t.Fatalf("seed %d: churn events in a churn-free run: %s", seed, rep.Summary())
		}
		if rep.Stuck != 0 || rep.LostToFaults != 0 {
			t.Fatalf("seed %d: fault-free large world stranded plans: %s", seed, rep.Summary())
		}
	}
}

// TestIncrementalOracleFullySampled turns the sampled differential check up
// to every query: the incremental oracle's bounds must agree with the
// processor-based reference oracle on all of them. This is the oracle-vs-
// oracle test that keeps the cheap path honest.
func TestIncrementalOracleFullySampled(t *testing.T) {
	n := int64(10)
	if testing.Short() {
		n = 4
	}
	for seed := int64(1); seed <= n; seed++ {
		rep, err := Run(Config{Seed: seed, Peers: 300, Churn: true, OracleSample: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		if rep.SampledChecks != rep.Plans {
			t.Fatalf("seed %d: OracleSample=1 verified %d of %d plans", seed, rep.SampledChecks, rep.Plans)
		}
	}
}

// TestLargeWorldScalesToTenThousand: one seed at the top of the 10³–10⁴
// target range. Skipped under -short (it is the single most expensive
// scenario in the suite).
func TestLargeWorldScalesToTenThousand(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-peer scenario skipped under -short")
	}
	rep, err := Run(Config{Seed: 7, Peers: 10_000, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("10k peers: %v", rep.Violations)
	}
	if rep.Peers < 10_000 {
		t.Fatalf("world has %d peers, wanted >= 10000", rep.Peers)
	}
}

// BenchmarkScenarioLarge measures large-world throughput — full 1000-peer
// churn scenarios per op — plus the two acceptance metrics bench-chaos
// records to BENCH_chaos.json: the incremental oracle's per-scenario cost
// (oracle-ms/op must stay within 10× of a small-world scenario's total
// ~1ms) and peak RSS.
func BenchmarkScenarioLarge(b *testing.B) {
	var oracleTime time.Duration
	var plans, completed, partial, stuck, lost int
	for i := 0; i < b.N; i++ {
		rep, err := Run(Config{Seed: int64(i + 1), Peers: 1000, Churn: true})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed() {
			b.Fatalf("seed %d: %v", i+1, rep.Violations)
		}
		oracleTime += rep.OracleTime
		plans += rep.Plans
		completed += rep.Completed
		partial += rep.Partial
		stuck += rep.Stuck
		lost += rep.LostToFaults
	}
	b.ReportMetric(float64(oracleTime.Milliseconds())/float64(b.N), "oracle-ms/op")
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		// Linux reports Maxrss in KiB.
		b.ReportMetric(float64(ru.Maxrss)/1024, "peak-rss-MB")
	}
	if plans > 0 {
		b.ReportMetric(float64(completed)/float64(plans), "completed/plan")
		b.ReportMetric(float64(partial)/float64(plans), "partial/plan")
		b.ReportMetric(float64(stuck)/float64(plans), "stuck/plan")
		b.ReportMetric(float64(lost)/float64(plans), "lost/plan")
	}
}
