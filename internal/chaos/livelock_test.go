package chaos

import "testing"

// Pinned livelock regression seeds. Before the routing layer grew
// visited-server memory (internal/route), these fault-free scenarios
// stranded plans (~9% across the sweep): plans for empty areas ping-ponged
// between the authoritative meta and an authoritative index until the
// forwarding-depth guard tripped, and sellers that declined materializing
// oversized collections left plans with "no binding, no route". Each pin
// records the world's former failure and the behavior that must hold now:
// zero stuck plans, every plan a completed or partial result.
var livelockSeeds = []struct {
	seed      int64
	world     string
	completed int
	partial   int
}{
	// Empty-area meta/index ping-pong (layered topologies; formerly
	// terminated via simnet.ErrDepthExceeded after 40 hops of bouncing).
	{98, "meta/index ping-pong, every plan formerly stuck", 0, 2},
	{16, "meta/index ping-pong, 2 of 3 plans formerly stuck", 1, 2},
	{2, "meta/index ping-pong, 1 of 4 plans formerly stuck", 3, 1},
	// Sellers declining oversized collections (formerly "no binding, no
	// route" at the declining seller). Seed 408's plan now completes
	// outright — the last stop is forced to materialize what it declined —
	// while 84 and 22 also carry a ping-pong plan that partials.
	{408, "seller decline, formerly stuck, now completes", 4, 0},
	{84, "seller decline + ping-pong", 3, 1},
	{22, "seller decline + ping-pong", 3, 1},
}

// TestLivelockRegression replays the two known livelock worlds fault-free
// and pins their terminal behavior: no stuck plans, no violations, and the
// exact completed/partial split (scenarios are pure functions of their
// seeds, so these are stable pins, not flaky observations).
func TestLivelockRegression(t *testing.T) {
	for _, tc := range livelockSeeds {
		rep, err := Run(Config{Seed: tc.seed, Level: LevelNone})
		if err != nil {
			t.Fatalf("seed %d (%s): harness error: %v", tc.seed, tc.world, err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d (%s): violations: %v", tc.seed, tc.world, rep.Violations)
		}
		if rep.Stuck != 0 {
			t.Errorf("seed %d (%s): %d stuck plans (want 0): %v",
				tc.seed, tc.world, rep.Stuck, rep.StuckDetails)
		}
		if rep.Completed != tc.completed || rep.Partial != tc.partial {
			t.Errorf("seed %d (%s): completed=%d partial=%d, want completed=%d partial=%d",
				tc.seed, tc.world, rep.Completed, rep.Partial, tc.completed, tc.partial)
		}
		if rep.Completed+rep.Partial != rep.Plans {
			t.Errorf("seed %d (%s): %d of %d plans unaccounted",
				tc.seed, tc.world, rep.Plans-rep.Completed-rep.Partial, rep.Plans)
		}
	}
}

// TestFaultFreeNeverStuck is the headline liveness claim as a test: across
// a fault-free sub-sweep, zero plans end up stuck — every one completes or
// returns an explicit partial result (the full 500-seed bar runs in
// TestScenarioSweep and `make chaos`; cmd/chaos -level none -max-stuck 0 is
// the CI gate).
func TestFaultFreeNeverStuck(t *testing.T) {
	n := int64(100)
	if testing.Short() {
		n = 40
	}
	for seed := int64(1); seed <= n; seed++ {
		rep, err := Run(Config{Seed: seed, Level: LevelNone})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		if rep.Stuck != 0 {
			t.Fatalf("seed %d: %d stuck plans in a fault-free run: %v",
				seed, rep.Stuck, rep.StuckDetails)
		}
	}
}
