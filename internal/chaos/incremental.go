// The incremental oracle: the differential reference large worlds can
// afford. The processor-based Oracle (oracle.go) re-binds every plan over
// the union of ALL collections — O(world) per query, unpayable at 10³–10⁴
// peers. IncOracle instead maintains its state under install deltas (one
// call per collection at world build, one per pre-generated joiner) and
// answers per query in O(collections overlapping the query's areas):
//
//   - EvalBounds binds a plan's URN leaves directly against an area-bucketed
//     collection index — mirroring catalog binding semantics: a collection
//     whose area overlaps the URN's area contributes all its items — and
//     evaluates the bound tree through internal/engine. That is a second,
//     independent implementation of the reference answer (no catalog, no
//     processor, no routing), which is exactly what a differential check
//     wants.
//   - Under churn the exact answer depends on delivery timing (a query
//     racing a join may legitimately miss the joiner's items), so EvalBounds
//     returns two multisets: lower (pre-churn collections only — every full
//     result must contain at least this) and upper (everything ever
//     installed — no result may exceed it). Without joins the two are the
//     same map and the check collapses to strict equality. Leaves, crashes
//     and partitions never widen the bounds: an unreachable seller makes a
//     plan partial, stuck or lost — never a full result missing its items —
//     and a promoted replica serves a byte-identical snapshot.
//   - ContainsAll is the per-result fabrication check: for item-preserving
//     plan shapes, every result item must exist in the installed union
//     multiset.
//
// The sampled differential check (large.go) cross-validates IncOracle
// itself: for a seeded fraction of queries, the processor-based Oracle is
// built over just the relevant collections and its answer must equal
// EvalBounds' — oracle versus oracle.
package chaos

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/namespace"
	"repro/internal/xmltree"
)

// incColl is one installed collection and when it appeared.
type incColl struct {
	pathExp string
	area    namespace.Area
	items   []*xmltree.Node
	// joined marks collections installed by mid-run churn: excluded from
	// the lower bound (an in-flight query may legitimately have resolved
	// before the join), included in the upper.
	joined bool
}

// IncOracle is the incrementally-maintained reference state.
type IncOracle struct {
	ns    *namespace.Namespace
	colls []incColl
	// byState buckets collection indexes by the first segment of each area
	// cell's location coordinate ("*" for top-level cells), so a query
	// touches only its states' collections instead of scanning the world.
	byState map[string][]int
	// union counts every installed item by canonical XML — the
	// per-result membership check.
	union     map[string]int
	hasJoined bool
}

// NewIncOracle creates an empty incremental oracle.
func NewIncOracle(ns *namespace.Namespace) *IncOracle {
	return &IncOracle{ns: ns, byState: map[string][]int{}, union: map[string]int{}}
}

// stateKey is the bucket key of one cell: its location coordinate's first
// segment, or "*" when the cell spans every state.
func stateKey(c namespace.Cell) string {
	if len(c.Coords) == 0 {
		return "*"
	}
	return c.Coords[0].Truncate(1).String()
}

// Install adds one collection — an O(items) delta, never a recomputation.
// Items must be frozen (they are aliased, and EvalBounds reads them from a
// goroutine concurrent with the network pump). joined marks mid-run
// arrivals; call Install for those before the pump starts, so the oracle's
// state is immutable while it is read.
func (o *IncOracle) Install(pathExp string, area namespace.Area, items []*xmltree.Node, joined bool) error {
	for _, c := range o.colls {
		if c.pathExp == pathExp {
			return fmt.Errorf("chaos: duplicate incremental-oracle collection %q", pathExp)
		}
	}
	idx := len(o.colls)
	o.colls = append(o.colls, incColl{pathExp: pathExp, area: area, items: items, joined: joined})
	seen := map[string]bool{}
	for _, c := range area.Cells {
		k := stateKey(c)
		if !seen[k] {
			seen[k] = true
			o.byState[k] = append(o.byState[k], idx)
		}
	}
	for _, it := range items {
		o.union[it.String()]++
	}
	if joined {
		o.hasJoined = true
	}
	return nil
}

// HasJoined reports whether any collection was installed as a mid-run
// joiner (when false, EvalBounds' lower and upper coincide).
func (o *IncOracle) HasJoined() bool { return o.hasJoined }

// candidates returns the sorted indexes of collections whose bucket
// intersects the area's states.
func (o *IncOracle) candidates(area namespace.Area) []int {
	all := false
	keys := make([]string, 0, len(area.Cells))
	seen := map[string]bool{}
	for _, c := range area.Cells {
		k := stateKey(c)
		if k == "*" {
			all = true
			break
		}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	if all {
		out := make([]int, len(o.colls))
		for i := range out {
			out[i] = i
		}
		return out
	}
	picked := map[int]bool{}
	var out []int
	for _, k := range append(keys, "*") {
		for _, i := range o.byState[k] {
			if !picked[i] {
				picked[i] = true
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// matching returns the items of every collection overlapping the area —
// whole collections, exactly like catalog binding materializes URL leaves
// (areas describe holdings; overlap admits the full collection).
func (o *IncOracle) matching(area namespace.Area, includeJoined bool) []*xmltree.Node {
	var out []*xmltree.Node
	for _, i := range o.candidates(area) {
		c := &o.colls[i]
		if c.joined && !includeJoined {
			continue
		}
		if area.Overlaps(c.area) {
			out = append(out, c.items...)
		}
	}
	return out
}

// bind replaces every URN leaf of a (mutable, cloned) tree with a Data node
// holding the matching items.
func (o *IncOracle) bind(n *algebra.Node, includeJoined bool) (*algebra.Node, error) {
	if n.Kind == algebra.KindURN {
		area, err := namespace.DecodeURN(n.URN)
		if err != nil {
			return nil, fmt.Errorf("chaos: incremental oracle: %w", err)
		}
		return algebra.Data(o.matching(area, includeJoined)...), nil
	}
	for i, c := range n.Children {
		bc, err := o.bind(c, includeJoined)
		if err != nil {
			return nil, err
		}
		n.Children[i] = bc
	}
	return n, nil
}

// eval computes one bound: clone, bind URNs, evaluate through the engine.
func (o *IncOracle) eval(plan *algebra.Plan, includeJoined bool) (map[string]int, error) {
	p := plan.Clone()
	root, err := o.bind(p.Root, includeJoined)
	if err != nil {
		return nil, err
	}
	items, err := engine.Evaluate(root)
	if err != nil {
		return nil, fmt.Errorf("chaos: incremental oracle on plan %q: %w", plan.ID, err)
	}
	return Multiset(items), nil
}

// EvalBounds computes the answer interval for a plan: every full result
// must satisfy lower ⊆ result ⊆ upper, every partial result ⊆ upper. With
// no joined collections the maps are identical (exact answer). Cost is
// O(collections overlapping the plan's areas), not O(world).
func (o *IncOracle) EvalBounds(plan *algebra.Plan) (lower, upper map[string]int, err error) {
	lower, err = o.eval(plan, false)
	if err != nil {
		return nil, nil, err
	}
	upper = lower
	if o.hasJoined {
		upper, err = o.eval(plan, true)
		if err != nil {
			return nil, nil, err
		}
	}
	return lower, upper, nil
}

// ContainsAll reports whether every distinct item of ms exists in the
// installed union — the cheap fabrication check for item-preserving plan
// shapes. Multiplicity is deliberately not compared (union-shape plans may
// legitimately bind one collection under two URN leaves).
func (o *IncOracle) ContainsAll(ms map[string]int) (bool, string) {
	for k := range ms {
		if o.union[k] == 0 {
			return false, fmt.Sprintf("item absent from every installed collection: %.120s", k)
		}
	}
	return true, ""
}

// Relevant materializes the collections overlapping any of the plan's URN
// areas, for building a reference Oracle over just the query's slice of the
// world (the sampled differential check). initial excludes mid-run joiners
// (the lower-bound world); all includes them (the upper-bound world). A
// collection outside both sets cannot contribute to the plan's answer under
// any binding, so the subset oracle equals the full-union oracle.
func (o *IncOracle) Relevant(plan *algebra.Plan) (initial, all []Collection, err error) {
	picked := map[int]bool{}
	var idxs []int
	for _, u := range plan.Root.URNs() {
		area, err := namespace.DecodeURN(u)
		if err != nil {
			return nil, nil, fmt.Errorf("chaos: incremental oracle: %w", err)
		}
		for _, i := range o.candidates(area) {
			if !picked[i] && area.Overlaps(o.colls[i].area) {
				picked[i] = true
				idxs = append(idxs, i)
			}
		}
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		c := &o.colls[i]
		coll := Collection{PathExp: c.pathExp, Area: c.area, Items: c.items}
		all = append(all, coll)
		if !c.joined {
			initial = append(initial, coll)
		}
	}
	return initial, all, nil
}
