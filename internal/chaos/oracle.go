package chaos

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/mqp"
	"repro/internal/namespace"
	"repro/internal/xmltree"
)

// oracleAddr is the address the centralized oracle registers everything
// under; every URL leaf a binding produces resolves locally.
const oracleAddr = "oracle:1"

// Collection is one base collection the oracle holds: the union of all
// collections in a scenario, each under its unique path expression.
type Collection struct {
	PathExp string
	Area    namespace.Area
	Items   []*xmltree.Node
}

// Oracle is the differential reference: a single peer that holds every
// collection in the scenario and evaluates plans entirely locally, through
// the same catalog/processor/engine semantics the distributed run uses but
// with none of its machinery — no network, no serialization, no forwarding,
// no faults. Whatever the chaotic distributed evaluation answers must equal
// (as a multiset) what the oracle answers.
//
// The oracle aliases the scenario's frozen collection items rather than
// copying them, deliberately: running it concurrently with the network pump
// exercises the frozen-subtree ownership rule (shared immutable reads from
// two goroutines) under -race.
type Oracle struct {
	proc *mqp.Processor
}

// NewOracle builds the oracle over the union of all collections.
func NewOracle(ns *namespace.Namespace, colls []Collection) (*Oracle, error) {
	store := make(map[string][]*xmltree.Node, len(colls))
	reg := catalog.Registration{
		Addr: oracleAddr,
		Role: catalog.RoleBase,
		// The oracle is authoritative for everything: an area matching no
		// collection is provably empty, exactly like an authoritative
		// meta-index server with total knowledge.
		Area:          ns.Everything(),
		Authoritative: true,
	}
	for _, c := range colls {
		if _, dup := store[c.PathExp]; dup {
			return nil, fmt.Errorf("chaos: duplicate oracle collection %q", c.PathExp)
		}
		store[c.PathExp] = c.Items
		reg.Collections = append(reg.Collections, catalog.Collection{
			Name: c.PathExp, PathExp: c.PathExp, Area: c.Area,
		})
	}
	cat := catalog.New(ns, oracleAddr)
	if err := cat.Register(reg); err != nil {
		return nil, err
	}
	proc, err := mqp.New(mqp.Config{
		Self:    oracleAddr,
		Catalog: cat,
		FetchLocal: func(_ *mqp.StepContext, _ string, pathExp string) ([]*xmltree.Node, int, error) {
			items, ok := store[pathExp]
			if !ok {
				return nil, 0, fmt.Errorf("chaos: oracle has no collection %q", pathExp)
			}
			return items, 0, nil
		},
		Policy:     mqp.DefaultPolicy{},
		PushSelect: true,
		Authority:  ns.Everything(),
	})
	if err != nil {
		return nil, err
	}
	return &Oracle{proc: proc}, nil
}

// Evaluate computes the reference answer for a plan. The plan is cloned
// first — Step mutates and freezes in place — so the caller's copy is
// untouched and reusable.
func (o *Oracle) Evaluate(plan *algebra.Plan) ([]*xmltree.Node, error) {
	p := plan.Clone()
	p.Target = oracleAddr
	for steps := 0; steps < 16; steps++ {
		out, err := o.proc.Step(p)
		if err != nil {
			return nil, fmt.Errorf("chaos: oracle step on plan %q: %w", p.ID, err)
		}
		if out.Done {
			return p.Results()
		}
	}
	return nil, fmt.Errorf("chaos: oracle did not converge on plan %q", p.ID)
}

// Multiset summarizes a result collection as canonical-XML counts; two
// answers are equal when their multisets are.
func Multiset(items []*xmltree.Node) map[string]int {
	m := make(map[string]int, len(items))
	for _, it := range items {
		m[it.String()]++
	}
	return m
}

// MultisetSubset reports whether sub ⊆ super (as multisets), and when it is
// not, one human-readable difference. Partial results are checked with it:
// they may miss items the full answer has, never carry extras.
func MultisetSubset(sub, super map[string]int) (bool, string) {
	for k, n := range sub {
		if super[k] < n {
			return false, fmt.Sprintf("item ×%d exceeds oracle's ×%d: %.120s", n, super[k], k)
		}
	}
	return true, ""
}

// MultisetEqual reports whether two multisets agree, and when they do not,
// one human-readable difference.
func MultisetEqual(got, want map[string]int) (bool, string) {
	for k, n := range want {
		if got[k] != n {
			return false, fmt.Sprintf("item ×%d (got ×%d): %.120s", n, got[k], k)
		}
	}
	for k, n := range got {
		if want[k] != n {
			return false, fmt.Sprintf("unexpected item ×%d: %.120s", n, k)
		}
	}
	return true, ""
}
