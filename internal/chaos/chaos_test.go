package chaos

import (
	"fmt"
	"testing"

	"repro/internal/xmltree"
)

// sweepSize returns the scenario budget: the acceptance bar is 500 seeded
// scenarios, trimmed to 200 under -short for CI.
func sweepSize() int {
	if testing.Short() {
		return 200
	}
	return 500
}

// TestScenarioSweep is the harness's main claim: hundreds of seeded random
// scenarios, every one holding all five invariants. Scenarios run across
// parallel shards, so `-race` additionally stresses concurrent frozen reads
// between the shards' pumps and oracles.
func TestScenarioSweep(t *testing.T) {
	n := sweepSize()
	const shards = 8
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for seed := int64(s + 1); seed <= int64(n); seed += shards {
				rep, err := Run(Config{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: harness error: %v", seed, err)
				}
				if rep.Failed() {
					t.Errorf("seed %d violated invariants (replay: make chaos SEED=%d):", seed, seed)
					for _, v := range rep.Violations {
						t.Errorf("  %s", v)
					}
					return
				}
			}
		})
	}
}

// TestScenarioDeterministic: the whole scenario — world, faults, outcome —
// is a pure function of the seed, which is what makes `make chaos SEED=n`
// a faithful replay of any sweep failure.
func TestScenarioDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 42, 977} {
		a, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if a.Summary() != b.Summary() {
			t.Fatalf("seed %d not deterministic:\n%s\n%s", seed, a.Summary(), b.Summary())
		}
	}
}

// TestFaultFreeLosesNothing: with no injected faults nothing is dropped or
// lost in flight, and the plan accounting closes without a loss bucket.
func TestFaultFreeLosesNothing(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rep, err := Run(Config{Seed: seed, Level: LevelNone})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		if rep.DroppedMsgs != 0 || rep.LostMsgs != 0 || rep.LostToFaults != 0 {
			t.Fatalf("seed %d: fault-free run recorded losses: %s", seed, rep.Summary())
		}
		if rep.Completed == 0 {
			t.Fatalf("seed %d: fault-free run completed nothing: %s", seed, rep.Summary())
		}
	}
}

// TestHeavyFaultsStillChecked: under heavy faults plans may be lost, but
// whatever completes is still oracle-equal, and the sweep must exercise the
// loss-attribution path somewhere.
func TestHeavyFaultsStillChecked(t *testing.T) {
	sawLoss := false
	for seed := int64(1); seed <= 40; seed++ {
		rep, err := Run(Config{Seed: seed, Level: LevelHeavy})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		if rep.LostToFaults > 0 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("40 heavy-fault scenarios never lost a plan; fault injection looks dead")
	}
}

func TestMultisetEqual(t *testing.T) {
	a := []*xmltree.Node{xmltree.MustParse(`<a>1</a>`), xmltree.MustParse(`<a>1</a>`), xmltree.MustParse(`<b/>`)}
	b := []*xmltree.Node{xmltree.MustParse(`<b/>`), xmltree.MustParse(`<a>1</a>`), xmltree.MustParse(`<a>1</a>`)}
	if ok, diff := MultisetEqual(Multiset(a), Multiset(b)); !ok {
		t.Fatalf("order must not matter: %s", diff)
	}
	if ok, _ := MultisetEqual(Multiset(a[:2]), Multiset(b)); ok {
		t.Fatal("missing item not detected")
	}
	if ok, _ := MultisetEqual(Multiset(a), Multiset(a[:1])); ok {
		t.Fatal("extra item not detected")
	}
}

func TestMultisetSubset(t *testing.T) {
	full := []*xmltree.Node{xmltree.MustParse(`<a>1</a>`), xmltree.MustParse(`<a>1</a>`), xmltree.MustParse(`<b/>`)}
	if ok, diff := MultisetSubset(Multiset(full[:1]), Multiset(full)); !ok {
		t.Fatalf("strict sub-multiset rejected: %s", diff)
	}
	if ok, diff := MultisetSubset(Multiset(nil), Multiset(full)); !ok {
		t.Fatalf("empty multiset rejected: %s", diff)
	}
	if ok, diff := MultisetSubset(Multiset(full), Multiset(full)); !ok {
		t.Fatalf("equal multiset rejected: %s", diff)
	}
	// The rejecting direction: an item the oracle lacks, and an item whose
	// multiplicity exceeds the oracle's.
	if ok, _ := MultisetSubset(Multiset(full), Multiset(full[:1])); ok {
		t.Fatal("excess items not detected")
	}
	extra := append(append([]*xmltree.Node(nil), full...), xmltree.MustParse(`<c/>`))
	if ok, _ := MultisetSubset(Multiset(extra), Multiset(full)); ok {
		t.Fatal("foreign item not detected")
	}
}

// BenchmarkScenario measures chaos throughput (scenarios/op) and the plan
// outcome rates — completed/partial/stuck/lost per plan — so `make
// bench-chaos` records liveness alongside speed in BENCH_chaos.json.
func BenchmarkScenario(b *testing.B) {
	var plans, completed, partial, stuck, lost int
	for i := 0; i < b.N; i++ {
		rep, err := Run(Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed() {
			b.Fatalf("seed %d: %v", i+1, rep.Violations)
		}
		plans += rep.Plans
		completed += rep.Completed
		partial += rep.Partial
		stuck += rep.Stuck
		lost += rep.LostToFaults
	}
	if plans > 0 {
		b.ReportMetric(float64(completed)/float64(plans), "completed/plan")
		b.ReportMetric(float64(partial)/float64(plans), "partial/plan")
		b.ReportMetric(float64(stuck)/float64(plans), "stuck/plan")
		b.ReportMetric(float64(lost)/float64(plans), "lost/plan")
	}
}
