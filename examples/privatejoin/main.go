// The §5.2 privacy scenario: a law-enforcement agency asks which TargetCorp
// employees contributed more than $5000 to suspected front organizations.
// The IRS will pass its (filtered) data to the State Department but not to
// the agency; the State Department joins without disclosing its watch list.
// The MQP visits IRS → State Dept and only the projected names return.
//
// Run: go run ./examples/privatejoin
package main

import (
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/mqp"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func main() {
	net := simnet.New()
	ns := workload.GarageSaleNamespace() // namespaces are irrelevant here; aliases route

	irs, err := peer.New(peer.Config{Addr: "irs:1", Net: net, NS: ns, PushSelect: true, Key: []byte("kI")})
	if err != nil {
		log.Fatal(err)
	}
	state, err := peer.New(peer.Config{Addr: "state:1", Net: net, NS: ns, PushSelect: true, Key: []byte("kS")})
	if err != nil {
		log.Fatal(err)
	}
	agency, err := peer.New(peer.Config{Addr: "agency:1", Net: net, NS: ns, Key: []byte("kA")})
	if err != nil {
		log.Fatal(err)
	}

	charities := []string{"Shell-Org-A", "Food-Bank", "Shell-Org-B", "Red-Cross", "Library-Fund"}
	var returns []*xmltree.Node
	for i := 0; i < 30; i++ {
		r := xmltree.Elem("return")
		r.Add(
			xmltree.ElemText("name", fmt.Sprintf("Employee %02d", i)),
			xmltree.ElemText("charity", charities[i%len(charities)]),
			xmltree.ElemText("amount", fmt.Sprintf("%d", 2000+i*400)),
		)
		returns = append(returns, r)
	}
	irs.AddCollection(peer.Collection{Name: "returns", PathExp: "/returns", Items: returns})
	state.AddCollection(peer.Collection{Name: "fronts", PathExp: "/fronts", Items: []*xmltree.Node{
		xmltree.MustParse(`<front><org>Shell-Org-A</org></front>`),
		xmltree.MustParse(`<front><org>Shell-Org-B</org></front>`),
	}})

	agency.Catalog().AddAlias("urn:IRS:TargetCorp-Contributions", "http://irs:1/returns")
	agency.Catalog().AddAlias("urn:State:FrontOrgs", "http://state:1/fronts")
	// The IRS also knows where the State Department publishes its list, so
	// it can bind that source once its own filtering is done.
	irs.Catalog().AddAlias("urn:State:FrontOrgs", "http://state:1/fronts")

	plan := algebra.NewPlan("investigation", "agency:1", algebra.Display(
		algebra.Project("person", []string{"contrib/name", "contrib/amount"},
			algebra.JoinNamed("charity", "org", "contrib", "front",
				algebra.Select(algebra.MustParsePredicate("amount > 5000"),
					algebra.URN("urn:IRS:TargetCorp-Contributions")),
				algebra.URN("urn:State:FrontOrgs")))))
	plan.RetainOriginal()
	// §5.2 transfer policy: this plan may only pass through the two
	// agencies (and the submitting client); no third party ever sees the
	// partial results.
	mqp.RestrictServers(plan, "agency:1", "irs:1", "state:1")
	// §5.2 ordering policy: the watch list is not bound until the IRS data
	// has been filtered into the plan.
	mqp.BindAfter(plan, "urn:State:FrontOrgs", "urn:IRS:TargetCorp-Contributions")

	if err := agency.Submit("agency:1", plan); err != nil {
		log.Fatal(err)
	}
	res, ok := agency.TakeResult()
	if !ok {
		log.Fatal("no result")
	}
	items, err := res.Plan.Results()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("employees with >$5000 contributions to front organizations (%d):\n", len(items))
	for _, it := range items {
		fmt.Printf("  %s ($%s)\n", it.Value("name"), it.Value("amount"))
	}

	trail, err := peer.QueryTrail(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan itinerary:")
	for _, v := range trail.Visits {
		fmt.Printf("  %-9s %-8s %s\n", v.Server, v.Action, v.Detail)
	}
	over := 0
	for _, r := range returns {
		if v, err := r.Int("amount"); err == nil && v > 5000 {
			over++
		}
	}
	fmt.Printf("\ndisclosure: agency saw %d projected rows; State Dept saw %d filtered IRS rows "+
		"(of %d total); the watch list never left the State Dept\n", len(items), over, len(returns))
}
