// The paper's Fig. 1 scenario: biomedical research groups host
// gene-expression repositories and describe their interests over Organism ×
// CellType hierarchies. A query about cardiac muscle cells in mammals is
// routed to the rodent and human labs and never touches the fly lab.
//
// Run: go run ./examples/geneexpression
package main

import (
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func main() {
	net := simnet.New()
	ns := workload.GeneNamespace()
	groups := workload.Fig1Groups(ns)

	// The NIH plays the paper's suggested meta-index role for the domain.
	if _, err := peer.New(peer.Config{Addr: "nih:9020", Net: net, NS: ns, PushSelect: true,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true, Key: []byte("kN")}); err != nil {
		log.Fatal(err)
	}
	for i, g := range groups {
		lab, err := peer.New(peer.Config{Addr: g.Addr, Net: net, NS: ns, PushSelect: true,
			Area: g.Area, Key: []byte(fmt.Sprintf("k%d", i))})
		if err != nil {
			log.Fatal(err)
		}
		data := workload.ExpressionData(ns, g, int64(1000+i), 50)
		lab.AddCollection(peer.Collection{Name: g.Name, PathExp: "/miame", Area: g.Area, Items: data})
		if err := lab.RegisterWith("nih:9020", catalog.RoleBase); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lab %-15s hosts %2d experiments, interest area %s\n", g.Name, len(data), g.Area)
	}

	client, err := peer.New(peer.Config{Addr: "researcher:9020", Net: net, NS: ns, Key: []byte("kR")})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "nih:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true,
	}); err != nil {
		log.Fatal(err)
	}

	query := ns.MustParseArea("[Coelomata/Deuterostomia/Mammalia, Muscle/Cardiac]")
	fmt.Printf("\nquery interest area: %s\n", query)
	for _, g := range groups {
		fmt.Printf("  overlaps %-15s: %v\n", g.Name, g.Area.Overlaps(query))
	}

	pred := algebra.And{
		L: algebra.Cmp{Path: "organism", Op: algebra.OpContains, Value: "Mammalia"},
		R: algebra.Cmp{Path: "celltype", Op: algebra.OpContains, Value: "Muscle/Cardiac"},
	}
	plan := algebra.NewPlan("cardiac", "researcher:9020",
		algebra.Display(algebra.Select(pred, algebra.URN(namespace.EncodeURN(query)))))
	plan.RetainOriginal()
	if err := client.Submit("nih:9020", plan); err != nil {
		log.Fatal(err)
	}
	res, ok := client.TakeResult()
	if !ok {
		log.Fatal("no result")
	}
	items, err := res.Plan.Results()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d cardiac-muscle experiments returned (%v):\n", len(items), res.At)
	for i, it := range items {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-10s %-50s %s\n", it.Value("gene"), it.Value("organism"), it.Value("lab"))
	}

	trail, err := peer.QueryTrail(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nitinerary (from signed provenance):")
	for _, v := range trail.Visits {
		fmt.Printf("  %-16s %-8s %s\n", v.Server, v.Action, v.Detail)
	}
	fmt.Printf("fly lab visited: %v (paper: \"can ignore the first site\")\n", trail.Visited("fly-lab:9020"))
}
