// The P2P garage sale of paper §2 at scale: 40 generated sellers with
// geographic and merchandise locality, a two-level catalog (state index
// servers under a country-wide meta-index), and a mix of queries — area
// counts, price-filtered searches, and a top-n bargain hunt.
//
// Run: go run ./examples/garagesale
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/hierarchy"
	"repro/internal/namespace"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func main() {
	net := simnet.New()
	ns := workload.GarageSaleNamespace()
	sellers := workload.GarageSale(ns, workload.GarageSaleConfig{
		Seed: 2026, Sellers: 48, ItemsPerSeller: 10, SpecialtyZipf: 1.1,
	})

	// Meta-index covering everything.
	if _, err := peer.New(peer.Config{Addr: "meta:9020", Net: net, NS: ns, PushSelect: true,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true, Key: []byte("kM")}); err != nil {
		log.Fatal(err)
	}

	// One authoritative index server per state, registered upward.
	states := map[string]string{}
	for _, s := range sellers {
		st := s.City.Truncate(2).String()
		if _, ok := states[st]; ok {
			continue
		}
		addr := "idx-" + strings.ReplaceAll(st, "/", "-") + ":9020"
		idx, err := peer.New(peer.Config{Addr: addr, Net: net, NS: ns, PushSelect: true,
			Area:          namespace.NewArea(namespace.NewCell(s.City.Truncate(2), hierarchy.Top)),
			Authoritative: true, Key: []byte("kI")})
		if err != nil {
			log.Fatal(err)
		}
		if err := idx.RegisterWith("meta:9020", catalog.RoleIndex); err != nil {
			log.Fatal(err)
		}
		states[st] = addr
	}
	fmt.Printf("deployed %d sellers across %d state index servers\n", len(sellers), len(states))

	for _, s := range sellers {
		sp, err := peer.New(peer.Config{Addr: s.Addr, Net: net, NS: ns, PushSelect: true,
			Area: s.Area, Key: []byte("kS")})
		if err != nil {
			log.Fatal(err)
		}
		sp.AddCollection(peer.Collection{Name: "items", PathExp: "/data[id=0]", Area: s.Area, Items: s.Items})
		if err := sp.RegisterWith(states[s.City.Truncate(2).String()], catalog.RoleBase); err != nil {
			log.Fatal(err)
		}
	}

	client, err := peer.New(peer.Config{Addr: "buyer:9020", Net: net, NS: ns, Key: []byte("kB")})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Catalog().Register(catalog.Registration{
		Addr: "meta:9020", Role: catalog.RoleMetaIndex,
		Area: ns.MustParseArea("[*, *]"), Authoritative: true,
	}); err != nil {
		log.Fatal(err)
	}

	submit := func(id string, root *algebra.Node) peer.Result {
		plan := algebra.NewPlan(id, "buyer:9020", algebra.Display(root))
		plan.RetainOriginal()
		if err := client.Submit("buyer:9020", plan); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		res, ok := client.TakeResult()
		if !ok {
			log.Fatalf("%s: no result", id)
		}
		return res
	}
	urn := func(area string) *algebra.Node {
		return algebra.URN(namespace.EncodeURN(ns.MustParseArea(area)))
	}

	// Query 1: how much furniture is for sale in Oregon?
	res := submit("q1", algebra.Count(algebra.Select(
		algebra.Cmp{Path: "category", Op: algebra.OpContains, Value: "Furniture"},
		urn("[USA/OR, Furniture]"))))
	items, _ := res.Plan.Results()
	fmt.Printf("q1: furniture items in Oregon: %s (%v, %d hops)\n",
		items[0].InnerText(), res.At, res.Hops)

	// Query 2: cheap CDs anywhere in Washington.
	res = submit("q2", algebra.Select(
		algebra.MustParsePredicate("price < 100 and category contains 'Books'"),
		urn("[USA/WA, Books]")))
	items, _ = res.Plan.Results()
	fmt.Printf("q2: books under $100 in Washington: %d items\n", len(items))
	for i, it := range items {
		if i == 3 {
			fmt.Println("   ...")
			break
		}
		fmt.Printf("   %s in %s: $%s (%s)\n",
			it.Value("name"), it.Value("city"), it.Value("price"), it.Value("condition"))
	}

	// Query 3: the five cheapest like-new items in Portland, any category.
	res = submit("q3", algebra.TopN(5, "price", false, algebra.Select(
		algebra.MustParsePredicate("condition = 'like-new'"),
		urn("[USA/OR/Portland, *]"))))
	items, _ = res.Plan.Results()
	fmt.Printf("q3: five cheapest like-new items in Portland (%d found):\n", len(items))
	for _, it := range items {
		fmt.Printf("   $%-4s %-22s %s\n", it.Value("price"), it.Value("name"), it.Value("category"))
	}

	m := net.Metrics()
	fmt.Printf("network totals: %d messages, %.1f KB\n", m.Messages, float64(m.Bytes)/1024)
}
