// Quickstart: the paper's Fig. 3 query through the public p2pq API.
//
// Three peers — a meta-index server, a CD seller, and a track-listing
// service — answer "find CDs under $10 in Portland that contain one of my
// favorite songs", with the plan mutating as it travels.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pkg/p2pq"
)

func main() {
	ns := p2pq.MustNewNamespace(
		p2pq.Dimension("Location", "USA/OR/Portland", "USA/WA/Seattle"),
		p2pq.Dimension("Merchandise", "Music/CDs", "Furniture/Chairs"),
	)
	sys := p2pq.NewSystem(ns)

	meta, err := sys.AddPeer(p2pq.PeerOptions{
		Addr: "meta:9020", Area: "[*, *]", Authoritative: true, SigningKey: []byte("kM"),
	})
	if err != nil {
		log.Fatal(err)
	}

	seller, err := sys.AddPeer(p2pq.PeerOptions{
		Addr: "seller:9020", Area: "[USA/OR/Portland, Music/CDs]", SigningKey: []byte("kS"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := seller.Publish("cds", "/data[id=1]", "[USA/OR/Portland, Music/CDs]",
		p2pq.BuildItem("sale", "cd", "Blue Train", "price", "8"),
		p2pq.BuildItem("sale", "cd", "Giant Steps", "price", "9"),
		p2pq.BuildItem("sale", "cd", "Kind of Blue", "price", "15"),
	); err != nil {
		log.Fatal(err)
	}
	if err := seller.JoinVia(meta.Addr()); err != nil {
		log.Fatal(err)
	}

	tracks, err := sys.AddPeer(p2pq.PeerOptions{Addr: "tracks:9020", SigningKey: []byte("kT")})
	if err != nil {
		log.Fatal(err)
	}
	if err := tracks.Publish("listings", "/data[id=9]", "[*, *]",
		p2pq.BuildItem("listing", "cd", "Blue Train", "song", "Locomotion"),
		p2pq.BuildItem("listing", "cd", "Giant Steps", "song", "Naima"),
		p2pq.BuildItem("listing", "cd", "Kind of Blue", "song", "So What"),
	); err != nil {
		log.Fatal(err)
	}

	client, err := sys.AddPeer(p2pq.PeerOptions{
		Addr: "me:9020", Knows: []string{meta.Addr()}, SigningKey: []byte("kC"),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's opaque URNs resolve through the meta server's catalog.
	meta.Alias("urn:CD:TrackListings", "http://tracks:9020/data[id=9]")

	// Favorite songs travel inside the plan as verbatim XML (Fig. 3).
	favorites := p2pq.Items(
		p2pq.BuildItem("song", "title", "Naima"),
		p2pq.BuildItem("song", "title", "So What"),
	)
	forSale := p2pq.ScanArea("[USA/OR/Portland, Music/CDs]").Where("price < 10")
	listings := p2pq.ScanURN("urn:CD:TrackListings")

	plan := favorites.
		Join(forSale.Join(listings, "cd", "cd", "sale", "listing"),
			"title", "listing/song", "fav", "match").
		Plan("quickstart", client.Addr())

	res, err := client.QueryVia(meta.Addr(), plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CDs under $10 carrying a favorite song (%d found, %v, %d hops):\n",
		len(res.Items), res.Latency, res.Hops)
	for _, it := range res.Items {
		fmt.Printf("  %s ($%s) — %s\n",
			it.Value("match/sale/cd"), it.Value("match/sale/price"), it.Value("fav/title"))
	}
	m := sys.Metrics()
	fmt.Printf("network: %d messages, %d bytes\n", m.Messages, m.Bytes)
}
